//! Hybrid rule + ML task analysis (paper §VI, future work 1).
//!
//! “Task Misclassification via Hybridization: A mixed model that combines
//! ML with predefined rules (human input). Misclassifying single-node
//! tasks as multi-node ones, while manageable, may cause performance
//! issues like resource reallocation. A secondary heuristic layer could
//! better handle edge cases, reducing disruptions.”
//!
//! The [`HybridAnalyzer`] wraps a [`TaskCoAnalyzer`] with a rule layer
//! evaluated *before* the model:
//!
//! * an `Equal` constraint on an attribute registered as unique-per-node
//!   (e.g. `node_index`) ⇒ Group 0, no model call;
//! * a constraint set whose compaction is contradictory ⇒ flagged
//!   unschedulable immediately;
//! * otherwise the ML prediction stands, except that rule-estimable upper
//!   bounds clamp obvious misclassifications (a task that can only ever
//!   match one node must never be predicted into a large group).

use std::collections::BTreeSet;

use ctlm_data::compaction::{collapse, CompactionError};
use ctlm_trace::{AttrId, TaskConstraint};

use crate::analyzer::TaskCoAnalyzer;

/// Where a hybrid verdict came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictSource {
    /// A predefined rule decided without consulting the model.
    Rule,
    /// The ML model decided.
    Model,
    /// The model decided but a rule clamped the result.
    ModelClamped,
}

/// A group prediction with provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridVerdict {
    /// Predicted suitable-node group.
    pub group: u8,
    /// Which layer produced it.
    pub source: VerdictSource,
}

/// Rule-augmented analyzer.
#[derive(Clone, Debug)]
pub struct HybridAnalyzer {
    model: TaskCoAnalyzer,
    /// Attributes known (human input) to hold a unique value per node.
    unique_attrs: BTreeSet<AttrId>,
}

impl HybridAnalyzer {
    /// Wraps a model analyzer with the rule layer.
    pub fn new(model: TaskCoAnalyzer, unique_attrs: impl IntoIterator<Item = AttrId>) -> Self {
        Self {
            model,
            unique_attrs: unique_attrs.into_iter().collect(),
        }
    }

    /// The wrapped model analyzer.
    pub fn model(&self) -> &TaskCoAnalyzer {
        &self.model
    }

    /// Predicts with the rule layer in front of the model.
    pub fn predict(
        &self,
        constraints: &[TaskConstraint],
    ) -> Result<HybridVerdict, CompactionError> {
        let reqs = collapse(constraints)?; // contradiction ⇒ Err, rule layer
                                           // Rule: Equal on a unique-per-node attribute pins the task to at
                                           // most one node ⇒ Group 0, regardless of what the model thinks.
        let pinned = reqs
            .iter()
            .any(|r| r.equal.is_some() && self.unique_attrs.contains(&r.attr));
        if pinned {
            return Ok(HybridVerdict {
                group: 0,
                source: VerdictSource::Rule,
            });
        }
        let model_group = self.model.predict_group(constraints)?;
        // Clamp: a range of width w on a unique attribute can match at
        // most w nodes; if that bound maps below the model's group, trust
        // the bound (the misclassification case the paper worries about).
        let mut bound: Option<usize> = None;
        for r in &reqs {
            if self.unique_attrs.contains(&r.attr) {
                if let (Some(lo), Some(hi)) = (r.lo, r.hi) {
                    let width = (hi - lo + 1).max(0) as usize;
                    bound = Some(bound.map_or(width, |b| b.min(width)));
                }
            }
        }
        if let Some(b) = bound {
            let bound_group = ctlm_data::dataset::group_for_count(b.max(1), self.group_width());
            if bound_group < model_group {
                return Ok(HybridVerdict {
                    group: bound_group,
                    source: VerdictSource::ModelClamped,
                });
            }
        }
        Ok(HybridVerdict {
            group: model_group,
            source: VerdictSource::Model,
        })
    }

    /// The group width used for rule-side bucketing. Uses width 1 — the
    /// clamp only fires when the *count bound* is small, where every
    /// width agrees; callers with a cell-specific width can bucket the
    /// bound themselves.
    fn group_width(&self) -> usize {
        1
    }

    /// High-priority routing with rules in front.
    pub fn is_high_priority(&self, constraints: &[TaskConstraint]) -> bool {
        match self.predict(constraints) {
            Ok(v) => v.group <= self.model.priority_threshold,
            Err(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growing::GrowingModel;
    use crate::trainer::TrainConfig;
    use ctlm_data::dataset::{DatasetBuilder, NUM_GROUPS};
    use ctlm_data::encode::co_vv::CoVvEncoder;
    use ctlm_data::vocab::ValueVocab;
    use ctlm_trace::{AttrValue, ConstraintOp as Op};

    /// A deliberately *under-trained* model (1 epoch) so the rule layer's
    /// corrections are observable.
    fn weak_hybrid() -> HybridAnalyzer {
        let mut vocab = ValueVocab::new();
        for v in 0..20 {
            vocab.observe(0, &AttrValue::Int(v));
        }
        let width = vocab.len();
        let enc = CoVvEncoder;
        let mut b = DatasetBuilder::new(width, NUM_GROUPS);
        for k in 1..20i64 {
            let cs = vec![TaskConstraint::new(0, Op::LessThan(k))];
            let reqs = collapse(&cs).unwrap();
            b.push(
                enc.encode_requirements(&reqs, &vocab),
                ctlm_data::dataset::group_for_count(k as usize, 1),
            );
            b.push(
                enc.encode_requirements(&reqs, &vocab),
                ctlm_data::dataset::group_for_count(k as usize, 1),
            );
        }
        let ds = b.snapshot(width);
        let mut m = GrowingModel::new(TrainConfig {
            epochs_limit: 1,
            max_attempts: 1,
            ..TrainConfig::default()
        });
        m.step(&ds, 1);
        HybridAnalyzer::new(TaskCoAnalyzer::new(m.to_net(), vocab), [0])
    }

    #[test]
    fn equal_on_unique_attr_is_rule_decided() {
        let h = weak_hybrid();
        let cs = vec![TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(7))))];
        let v = h.predict(&cs).unwrap();
        assert_eq!(v.group, 0);
        assert_eq!(v.source, VerdictSource::Rule);
        assert!(h.is_high_priority(&cs));
    }

    #[test]
    fn narrow_window_clamps_a_bad_model_guess() {
        let h = weak_hybrid();
        // Width-1 window: at most 1 node. The untrained model may say
        // anything; the hybrid must say Group 0.
        let cs = vec![
            TaskConstraint::new(0, Op::GreaterThanEqual(5)),
            TaskConstraint::new(0, Op::LessThanEqual(5)),
        ];
        let v = h.predict(&cs).unwrap();
        assert_eq!(v.group, 0, "count bound of 1 must clamp to Group 0");
        // Provenance depends on what the (untrained) model happened to
        // say: if it was already right the verdict is Model, otherwise
        // the clamp must have fired.
        let raw = h.model().predict_group(&cs).unwrap();
        if raw > 0 {
            assert_eq!(v.source, VerdictSource::ModelClamped);
        } else {
            assert_eq!(v.source, VerdictSource::Model);
        }
    }

    #[test]
    fn contradictions_surface_as_errors() {
        let h = weak_hybrid();
        let cs = vec![
            TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(1)))),
            TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(2)))),
        ];
        assert!(h.predict(&cs).is_err());
        assert!(h.is_high_priority(&cs), "unschedulable tasks surface fast");
    }

    #[test]
    fn non_unique_attrs_do_not_trigger_rules() {
        let h = weak_hybrid();
        // Attribute 5 is not registered unique: Equal on it is NOT a
        // guaranteed single-node pin, so the model decides.
        let cs = vec![TaskConstraint::new(5, Op::Equal(Some(AttrValue::Int(1))))];
        let v = h.predict(&cs).unwrap();
        assert_eq!(v.source, VerdictSource::Model);
    }
}
