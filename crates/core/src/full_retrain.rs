//! The Fully-Retrain variant.
//!
//! The paper's main comparison point for the Growing model: the same
//! two-layer architecture, the same loss, optimizer and acceptance
//! thresholds — but trained from scratch on every feature-array
//! extension. Accuracy is comparable; the epoch count (and so wall time)
//! is what differs.

use serde::{Deserialize, Serialize};

use ctlm_data::dataset::Dataset;
use ctlm_nn::{Net, StateDict};

use crate::trainer::{fresh_two_layer, train_step, StepOutcome, TrainConfig};

/// A model retrained from scratch at every step.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FullRetrainModel {
    config: TrainConfig,
    state: Option<StateDict>,
    features: usize,
}

impl FullRetrainModel {
    /// A new variant with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            state: None,
            features: 0,
        }
    }

    /// True once trained.
    pub fn is_trained(&self) -> bool {
        self.state.is_some()
    }

    /// Feature width of the last trained model.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Materialises the current model.
    ///
    /// # Panics
    /// Panics before the first step.
    pub fn to_net(&self) -> Net {
        let sd = self.state.as_ref().expect("model not trained yet");
        let mut net = fresh_two_layer(self.features, &self.config, 0);
        net.load_state_dict(sd).expect("own state dict must load");
        net
    }

    /// Trains from scratch on the step's dataset.
    pub fn step(&mut self, dataset: &Dataset, seed: u64) -> StepOutcome {
        let cfg = self.config;
        let width = dataset.features_count();
        let (outcome, net) = train_step(dataset, &cfg, seed, None, |s| {
            fresh_two_layer(width, &cfg, s)
        });
        self.state = Some(net.state_dict());
        self.features = width;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::tests::synthetic_dataset;

    #[test]
    fn never_uses_transfer() {
        let ds = synthetic_dataset(600, 40, 20);
        let mut m = FullRetrainModel::new(TrainConfig::default());
        let a = m.step(&ds, 1);
        assert!(!a.used_transfer);
        let mut wide = ds.clone();
        wide.widen(46);
        let b = m.step(&wide, 2);
        assert!(
            !b.used_transfer,
            "fully-retrain must always start from scratch"
        );
        assert!(b.accepted);
        assert_eq!(m.features(), 46);
    }

    #[test]
    fn reaches_acceptance_on_learnable_data() {
        let ds = synthetic_dataset(700, 50, 21);
        let mut m = FullRetrainModel::new(TrainConfig::default());
        let out = m.step(&ds, 3);
        assert!(out.accepted);
        assert!(out.evaluation.accuracy > 0.95);
    }
}
