//! Host-plane perf attribution for the parallel coordinator: where each
//! epoch round's wall-clock time went.

use serde::{Deserialize, Error, Serialize, Value};

use crate::host::HostFingerprint;

/// Wall-clock totals for one shard across a whole run.
///
/// `barrier_ns` is the derived wait: for each round, the slowest shard's
/// run time minus this shard's — i.e. how long this shard's worker sat
/// at the epoch barrier. A large spread across shards is the imbalance
/// signal the ROADMAP's multi-core-speedup item needs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardPerf {
    /// Total time inside `run_before` (ns).
    pub run_ns: u64,
    /// Total derived barrier wait (ns).
    pub barrier_ns: u64,
}

impl Serialize for ShardPerf {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("run_us".to_string(), Value::Num(self.run_ns as f64 / 1e3)),
            (
                "barrier_us".to_string(),
                Value::Num(self.barrier_ns as f64 / 1e3),
            ),
        ])
    }
}

impl Deserialize for ShardPerf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let run_us = f64::from_value(v.get_field("run_us")).unwrap_or(0.0);
        let barrier_us = f64::from_value(v.get_field("barrier_us")).unwrap_or(0.0);
        Ok(Self {
            run_ns: (run_us * 1e3) as u64,
            barrier_ns: (barrier_us * 1e3) as u64,
        })
    }
}

/// A whole parallel run's host-plane profile: per-shard run/barrier
/// totals, coordinator outbox-drain time, round count, and the host it
/// was measured on. Lives only in the `_perf` section of report `_meta`
/// — never in gated report bytes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfReport {
    /// Epoch rounds executed.
    pub rounds: u64,
    /// Total coordinator time draining/sorting outboxes (ns).
    pub drain_ns: u64,
    /// Worker threads the run used.
    pub threads: usize,
    /// Per-shard totals, indexed by shard.
    pub shards: Vec<ShardPerf>,
    /// The host the numbers were measured on.
    pub host: Option<HostFingerprint>,
}

impl PerfReport {
    /// Mean per-round run time of the slowest-loaded shard (µs) — the
    /// parallel critical path per round.
    pub fn critical_path_us_per_round(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        let max_run = self.shards.iter().map(|s| s.run_ns).max().unwrap_or(0);
        max_run as f64 / 1e3 / self.rounds as f64
    }

    /// Folds another run's profile into this one (shard-wise add; used
    /// when a sweep executes several runs).
    pub fn merge(&mut self, other: &PerfReport) {
        self.rounds += other.rounds;
        self.drain_ns += other.drain_ns;
        self.threads = self.threads.max(other.threads);
        if self.shards.len() < other.shards.len() {
            self.shards.resize(other.shards.len(), ShardPerf::default());
        }
        for (a, b) in self.shards.iter_mut().zip(other.shards.iter()) {
            a.run_ns += b.run_ns;
            a.barrier_ns += b.barrier_ns;
        }
        if self.host.is_none() {
            self.host = other.host.clone();
        }
    }
}

impl Serialize for PerfReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rounds".to_string(), Value::Num(self.rounds as f64)),
            ("threads".to_string(), Value::Num(self.threads as f64)),
            (
                "drain_us".to_string(),
                Value::Num(self.drain_ns as f64 / 1e3),
            ),
            (
                "shards".to_string(),
                Value::Array(self.shards.iter().map(Serialize::to_value).collect()),
            ),
            ("host".to_string(), self.host.to_value()),
        ])
    }
}

impl Deserialize for PerfReport {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Self {
            rounds: u64::from_value(v.get_field("rounds")).unwrap_or(0),
            threads: usize::from_value(v.get_field("threads")).unwrap_or(0),
            drain_ns: (f64::from_value(v.get_field("drain_us")).unwrap_or(0.0) * 1e3) as u64,
            shards: Vec::from_value(v.get_field("shards")).unwrap_or_default(),
            host: Option::from_value(v.get_field("host")).unwrap_or(None),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_uses_the_slowest_shard() {
        let p = PerfReport {
            rounds: 10,
            drain_ns: 5_000,
            threads: 2,
            shards: vec![
                ShardPerf {
                    run_ns: 100_000,
                    barrier_ns: 900_000,
                },
                ShardPerf {
                    run_ns: 1_000_000,
                    barrier_ns: 0,
                },
            ],
            host: None,
        };
        assert_eq!(p.critical_path_us_per_round(), 100.0);
    }

    #[test]
    fn merge_accumulates_shardwise() {
        let mut a = PerfReport {
            rounds: 1,
            drain_ns: 10,
            threads: 1,
            shards: vec![ShardPerf {
                run_ns: 5,
                barrier_ns: 1,
            }],
            host: None,
        };
        let b = PerfReport {
            rounds: 2,
            drain_ns: 20,
            threads: 4,
            shards: vec![
                ShardPerf {
                    run_ns: 7,
                    barrier_ns: 2,
                },
                ShardPerf {
                    run_ns: 3,
                    barrier_ns: 0,
                },
            ],
            host: None,
        };
        a.merge(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.threads, 4);
        assert_eq!(a.shards.len(), 2);
        assert_eq!(a.shards[0].run_ns, 12);
        assert_eq!(a.shards[1].run_ns, 3);
    }

    #[test]
    fn roundtrips_through_value() {
        let p = PerfReport {
            rounds: 3,
            drain_ns: 2_500,
            threads: 2,
            shards: vec![ShardPerf {
                run_ns: 1_000,
                barrier_ns: 500,
            }],
            host: Some(HostFingerprint {
                cpu_model: "Fake CPU".into(),
                cores: 2,
            }),
        };
        let back = PerfReport::from_value(&p.to_value()).unwrap();
        assert_eq!(p, back);
    }
}
