//! Host fingerprinting: which machine produced a measurement.
//!
//! The PR-7 bench caveat — 1.4–1.8× "regressions" that were really a
//! different container instance with less memory bandwidth — went
//! undiagnosed because nothing recorded *which host* produced a number.
//! The fingerprint answers that: cpu model + core count, attached to
//! bench JSON and lab-report `_meta` so comparisons can warn when the
//! hosts differ.

use serde::{Deserialize, Error, Serialize, Value};

/// Identity of the machine a measurement was taken on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostFingerprint {
    /// CPU model string (`model name` from `/proc/cpuinfo`; `"unknown"`
    /// when unreadable, e.g. off Linux).
    pub cpu_model: String,
    /// Logical core count visible to the process.
    pub cores: usize,
}

impl HostFingerprint {
    /// Reads the current host's fingerprint. Best-effort: missing
    /// `/proc/cpuinfo` degrades to `"unknown"` rather than failing.
    pub fn detect() -> Self {
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|text| {
                text.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|m| m.trim().to_string())
            })
            .unwrap_or_else(|| "unknown".to_string());
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self { cpu_model, cores }
    }

    /// True when two fingerprints plausibly name the same host class
    /// (same cpu model and core count).
    pub fn same_host(&self, other: &HostFingerprint) -> bool {
        self.cpu_model == other.cpu_model && self.cores == other.cores
    }

    /// One-line human form (`"AMD EPYC 7B13 (8 cores)"`).
    pub fn label(&self) -> String {
        format!("{} ({} cores)", self.cpu_model, self.cores)
    }
}

impl Serialize for HostFingerprint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("cpu_model".to_string(), Value::Str(self.cpu_model.clone())),
            ("cores".to_string(), Value::Num(self.cores as f64)),
        ])
    }
}

impl Deserialize for HostFingerprint {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Self {
            cpu_model: String::from_value(v.get_field("cpu_model"))
                .map_err(|e| e.context("HostFingerprint.cpu_model"))?,
            cores: usize::from_value(v.get_field("cores"))
                .map_err(|e| e.context("HostFingerprint.cores"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_yields_nonempty_model_and_positive_cores() {
        let fp = HostFingerprint::detect();
        assert!(!fp.cpu_model.is_empty());
        assert!(fp.cores >= 1);
        assert!(fp.same_host(&fp));
    }

    #[test]
    fn roundtrips_and_compares() {
        let a = HostFingerprint {
            cpu_model: "Fake CPU X1".into(),
            cores: 4,
        };
        let back = HostFingerprint::from_value(&a.to_value()).unwrap();
        assert_eq!(a, back);
        let b = HostFingerprint {
            cpu_model: "Fake CPU X1".into(),
            cores: 8,
        };
        assert!(!a.same_host(&b));
    }
}
