//! Fixed log₂-bucket histogram: preallocated, allocation-free to record,
//! deterministic to export.

use serde::{Deserialize, Error, Serialize, Value};

/// Number of buckets. Bucket 0 holds the value 0; bucket `i ≥ 1` holds
/// values with exactly `i` significant bits, i.e. `[2^(i-1), 2^i - 1]`.
/// 40 buckets cover values up to `2^39 - 1` (~5.5e11 — beyond any queue
/// depth, event count, or µs latency the simulator produces); larger
/// values clamp into the last bucket.
pub const BUCKETS: usize = 40;

/// A fixed log₂-bucket histogram of `u64` samples.
///
/// Storage is a flat `[u64; BUCKETS]` — recording never allocates, so
/// histograms can sit inside the zero-allocation scheduling pass. Export
/// ([`Serialize`]) lists only non-empty buckets as `{le, count}` pairs
/// (inclusive upper bound), plus total `count` and `sum`, in bucket
/// order — a deterministic function of the recorded samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket index a value lands in: 0 for 0, otherwise the value's
    /// significant-bit count, clamped to the last bucket.
    pub fn bucket_index(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The inclusive upper bound of a bucket (`u64::MAX` for the last,
    /// clamping bucket).
    ///
    /// # Panics
    /// Panics when `bucket >= BUCKETS`.
    pub fn bucket_bound(bucket: usize) -> u64 {
        assert!(bucket < BUCKETS, "bucket {bucket} out of range");
        if bucket == BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Records one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The raw per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another histogram into this one (bucket-wise add).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the recorded samples.
    ///
    /// Estimator: find the bucket where the cumulative count first
    /// reaches `ceil(q · count)`, then interpolate linearly between the
    /// bucket's inclusive bounds by the target rank's position within
    /// the bucket, taking the floor. The result depends only on the
    /// bucket counts — not on `sum` or the original samples — so a
    /// histogram reconstructed from its JSON export yields identical
    /// quantiles, and the export is byte-deterministic. Error is bounded
    /// by the log₂ bucket width (< 2× the true value).
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i == 0 {
                    return 0;
                }
                let lo = 1u64 << (i - 1);
                // The open-ended last bucket interpolates over its
                // nominal [2^38, 2^39 - 1] width.
                let hi = if i == BUCKETS - 1 {
                    (1u64 << (BUCKETS - 1)) - 1
                } else {
                    Self::bucket_bound(i)
                };
                let within = (rank - seen) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * within).floor() as u64;
            }
            seen += c;
        }
        Self::bucket_bound(BUCKETS - 1)
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                // The open-ended last bucket exports its lower bound as
                // `le` rather than u64::MAX (which f64 JSON cannot carry
                // exactly); it is distinguishable by being bucket 39's
                // bound, and in practice sim values never reach it.
                let le = if i == BUCKETS - 1 {
                    (1u64 << (BUCKETS - 1)) - 1
                } else {
                    Self::bucket_bound(i)
                };
                Value::Object(vec![
                    ("le".to_string(), Value::Num(le as f64)),
                    ("count".to_string(), Value::Num(*c as f64)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("count".to_string(), Value::Num(self.count as f64)),
            ("sum".to_string(), Value::Num(self.sum as f64)),
            (
                "quantiles".to_string(),
                Value::Object(
                    [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)]
                        .iter()
                        .map(|&(name, q)| (name.to_string(), Value::Num(self.quantile(q) as f64)))
                        .collect(),
                ),
            ),
            ("buckets".to_string(), Value::Array(buckets)),
        ])
    }
}

impl Deserialize for Histogram {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut h = Histogram::new();
        h.count =
            u64::from_value(v.get_field("count")).map_err(|e| e.context("Histogram.count"))?;
        h.sum = u64::from_value(v.get_field("sum")).map_err(|e| e.context("Histogram.sum"))?;
        match v.get_field("buckets") {
            Value::Array(items) => {
                for item in items {
                    let le = u64::from_value(item.get_field("le"))
                        .map_err(|e| e.context("Histogram.buckets.le"))?;
                    let count = u64::from_value(item.get_field("count"))
                        .map_err(|e| e.context("Histogram.buckets.count"))?;
                    h.counts[Self::bucket_index(le)] = count;
                }
                Ok(h)
            }
            other => Err(Error::msg(format!(
                "Histogram.buckets: expected array, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket 0: the value 0 only.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Bucket i (i >= 1): [2^(i-1), 2^i - 1].
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        for i in 1..BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "upper edge of bucket {i}");
            assert_eq!(Histogram::bucket_bound(i), hi);
        }
    }

    #[test]
    fn oversized_values_clamp_into_the_last_bucket() {
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(1u64 << 39), BUCKETS - 1);
        assert_eq!(Histogram::bucket_index((1u64 << 39) - 1), BUCKETS - 1);
        // The largest value that does NOT clamp.
        assert_eq!(Histogram::bucket_index((1u64 << 38) - 1), BUCKETS - 2);
        assert_eq!(Histogram::bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_accumulates_count_and_sum() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.bucket_counts()[0], 1); // 0
        assert_eq!(h.bucket_counts()[1], 1); // 1
        assert_eq!(h.bucket_counts()[3], 2); // 5 twice
        assert_eq!(h.bucket_counts()[10], 1); // 1000 ∈ [512, 1023]
    }

    #[test]
    fn merge_is_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(3);
        b.record(3);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 106);
        assert_eq!(a.bucket_counts()[2], 2);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(100); // bucket 7: [64, 127]
        }
        // All mass in one bucket: p50 lands mid-bucket, p99 near the top.
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((64..=127).contains(&p50), "p50 = {p50}");
        assert!((64..=127).contains(&p99), "p99 = {p99}");
        assert!(p50 < p99);
        // Quantiles are monotone in q and bounded by the bucket.
        assert!(h.quantile(0.0) <= h.quantile(1.0));
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn quantiles_survive_serialization_roundtrip() {
        let mut h = Histogram::new();
        for v in [1u64, 3, 3, 80, 80, 80, 5_000, 1 << 20] {
            h.record(v);
        }
        let back = Histogram::from_value(&h.to_value()).unwrap();
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(h.quantile(q), back.quantile(q));
        }
    }

    #[test]
    fn export_carries_p50_p95_p99() {
        let mut h = Histogram::new();
        h.record(10);
        let v = h.to_value();
        for name in ["p50", "p95", "p99"] {
            assert!(
                u64::from_value(v.get_field("quantiles").get_field(name)).is_ok(),
                "missing quantile {name}"
            );
        }
    }

    #[test]
    fn serialization_roundtrips_nonempty_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(6);
        h.record(6);
        let back = Histogram::from_value(&h.to_value()).unwrap();
        assert_eq!(h, back);
    }
}
