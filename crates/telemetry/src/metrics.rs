//! The sim-plane metrics registry: named counters, gauges, and
//! histograms with a canonical (sorted) JSON export.

use serde::{Deserialize, Error, Serialize, Value};

use crate::histogram::Histogram;

/// A registry of deterministic, sim-plane metrics.
///
/// Names are hierarchical slash-paths (`cell-0/sched/placed`,
/// `cell-0/sim/pop_wheel`). The registry is populated at collection time
/// (end of run) from the subsystems' inline counters, so nothing here
/// runs on the hot path. Export sorts every section by name — two
/// registries with the same contents serialize to the same bytes
/// regardless of insertion order, which is what makes the metrics file
/// byte-comparable across thread counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at 0 first if absent.
    pub fn counter(&mut self, name: impl Into<String>, delta: u64) {
        let name = name.into();
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name, delta)),
        }
    }

    /// Sets a gauge to an instantaneous value (last write wins).
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name, value)),
        }
    }

    /// Merges a histogram into the named slot (bucket-wise add when the
    /// name already exists).
    pub fn histogram(&mut self, name: impl Into<String>, h: &Histogram) {
        let name = name.into();
        match self.histograms.iter_mut().find(|(n, _)| *n == name) {
            Some((_, existing)) => existing.merge(h),
            None => self.histograms.push((name, h.clone())),
        }
    }

    /// The value of a counter, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The named histogram, if present.
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// All counters, sorted by name.
    pub fn counters_sorted(&self) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> = self
            .counters
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        out.sort_unstable_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the other's value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Metrics) {
        for (n, v) in &other.counters {
            self.counter(n.clone(), *v);
        }
        for (n, v) in &other.gauges {
            self.gauge(n.clone(), *v);
        }
        for (n, h) in &other.histograms {
            self.histogram(n.clone(), h);
        }
    }
}

impl Serialize for Metrics {
    fn to_value(&self) -> Value {
        let mut counters: Vec<_> = self.counters.clone();
        counters.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<_> = self.gauges.clone();
        gauges.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<_> = self.histograms.clone();
        histograms.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Value::Object(vec![
            (
                "counters".to_string(),
                Value::Object(
                    counters
                        .into_iter()
                        .map(|(n, v)| (n, Value::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Object(
                    gauges
                        .into_iter()
                        .map(|(n, v)| (n, Value::Num(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Object(
                    histograms
                        .into_iter()
                        .map(|(n, h)| (n, h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for Metrics {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut m = Metrics::new();
        if let Value::Object(pairs) = v.get_field("counters") {
            for (n, val) in pairs {
                m.counters.push((
                    n.clone(),
                    u64::from_value(val).map_err(|e| e.context("Metrics.counters"))?,
                ));
            }
        }
        if let Value::Object(pairs) = v.get_field("gauges") {
            for (n, val) in pairs {
                m.gauges.push((
                    n.clone(),
                    f64::from_value(val).map_err(|e| e.context("Metrics.gauges"))?,
                ));
            }
        }
        if let Value::Object(pairs) = v.get_field("histograms") {
            for (n, val) in pairs {
                m.histograms.push((
                    n.clone(),
                    Histogram::from_value(val).map_err(|e| e.context("Metrics.histograms"))?,
                ));
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export_sorted() {
        let mut m = Metrics::new();
        m.counter("z/last", 1);
        m.counter("a/first", 2);
        m.counter("z/last", 3);
        assert_eq!(m.counter_value("z/last"), Some(4));
        let v = m.to_value();
        if let Value::Object(pairs) = v.get_field("counters") {
            let names: Vec<_> = pairs.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, ["a/first", "z/last"]);
        } else {
            panic!("counters should be an object");
        }
    }

    #[test]
    fn export_bytes_are_insertion_order_independent() {
        let mut a = Metrics::new();
        a.counter("x", 1);
        a.counter("y", 2);
        let mut b = Metrics::new();
        b.counter("y", 2);
        b.counter("x", 1);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut h = Histogram::new();
        h.record(4);
        let mut a = Metrics::new();
        a.counter("c", 1);
        a.histogram("h", &h);
        let mut b = Metrics::new();
        b.counter("c", 2);
        b.histogram("h", &h);
        b.gauge("g", 0.5);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), Some(3));
        assert_eq!(a.histogram_value("h").unwrap().count(), 2);
    }

    #[test]
    fn roundtrips_through_json() {
        let mut h = Histogram::new();
        h.record(7);
        let mut m = Metrics::new();
        m.counter("events", 10);
        m.gauge("utilisation", 0.75);
        m.histogram("depth", &h);
        let text = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&text).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), text);
    }
}
