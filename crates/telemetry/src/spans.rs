//! Causal flight recorder: sim-time lifecycle spans with decision
//! records.
//!
//! Where the [`TraceRing`](crate::TraceRing) keeps the last-N raw
//! events, the span log keeps *intervals*: every task gets a sequence of
//! lifecycle spans (`queued`, `running`, `retry_wait`, `spill_transit`,
//! `dead_letter`), every machine gets availability spans
//! (`machine_down`, `machine_drain`), and control-plane actors
//! (autoscaler, fault plane) record instant decision spans. Each record
//! carries a compact decision audit — why the span opened (`cause`),
//! why it closed (`outcome`), which plan produced the decision
//! (`plan`/`detail`), and two kind-specific payload words — so a
//! consumer can replay the full causal story of a run: admitted,
//! queued, placed, crashed, retried, spilled, dead-lettered.
//!
//! Determinism and cost discipline match the rest of the sim plane:
//!
//! - Every field is sim-plane state (sim time, static tags, ids), so a
//!   log is byte-identical across `execution.threads` values.
//! - Closed records live in a segment arena of fixed-size buffers that
//!   are recycled rather than freed (mirroring `TaskSlab`): steady-state
//!   recording — updating an open span in place, closing into a
//!   non-full segment — never allocates. New segments appear only when
//!   the log *grows*, i.e. on lifecycle transitions, which never happen
//!   inside the zero-allocation scheduling pass's measured window.
//! - Open spans close deterministically at the horizon
//!   ([`SpanLog::close_all`] walks subjects in sorted order) with
//!   `outcome = "horizon"` and `end = horizon`.

use std::collections::HashMap;

/// Records per segment in the arena. Small enough that a mostly-idle
/// cell wastes little, large enough that a hot cell grows rarely.
const SEGMENT: usize = 1024;

/// Version stamp written into every metrics/spans export document so
/// consumers (and `--diff`) can detect format drift instead of
/// producing confusing deltas.
pub const SCHEMA_VERSION: u64 = 1;

/// One closed span: a `[start, end]` sim-time interval on a subject,
/// plus its decision record. All tags are `&'static str` and all
/// payloads flat `u64`s — recording never allocates and never touches
/// host state.
///
/// Payload meaning by `kind`:
///
/// | kind           | `a`                    | `b`                  |
/// |----------------|------------------------|----------------------|
/// | `queued`       | machine placed on      | candidate estimate   |
/// | `running`      | machine                | candidate estimate   |
/// | `retry_wait`   | backoff delay (µs)     | machine that crashed |
/// | `spill_transit`| route target cell      | —                    |
/// | `dead_letter`  | machine that crashed   | —                    |
/// | `scale_up`     | machines ordered       | crash replacements   |
/// | `scale_down`   | machines released      | —                    |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Subject id: task id for `group == "task"`, machine id for
    /// `group == "machine"`, actor-specific for `group == "ctrl"`.
    pub subject: u64,
    /// Track group: `"task"`, `"machine"`, or `"ctrl"`.
    pub group: &'static str,
    /// Span kind (`"queued"`, `"running"`, `"retry_wait"`, …).
    pub kind: &'static str,
    /// Sim time the span opened (µs).
    pub start: u64,
    /// Sim time the span closed (µs, ≥ `start`).
    pub end: u64,
    /// Why the span opened (`"arrival"`, `"retry"`, `"no_capacity"`, …).
    pub cause: &'static str,
    /// Why the span closed (`"placed"`, `"machine_crash"`, `"horizon"`, …).
    pub outcome: &'static str,
    /// Plan that produced the decision: placer name, retry-policy name,
    /// autoscale-policy name, or spill route disposition.
    pub plan: &'static str,
    /// Secondary plan detail: the capacity-index arm the placer walked
    /// (`"candidate_driven"` / `"capacity_driven"`), crash provenance
    /// (displaced lifecycle owner), etc.
    pub detail: &'static str,
    /// Placement attempts burned while queued, or retry attempt number.
    pub attempts: u64,
    /// Kind-specific payload word (see table above).
    pub a: u64,
    /// Kind-specific payload word (see table above).
    pub b: u64,
}

/// An open (not yet closed) span's mutable state.
#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    kind: &'static str,
    start: u64,
    cause: &'static str,
    plan: &'static str,
    detail: &'static str,
    attempts: u64,
    a: u64,
    b: u64,
}

/// The per-cell span log: closed records in a recycled segment arena
/// plus open-span tables keyed by subject id.
///
/// Open tables are keyed by *task id* (globally unique across cells —
/// the lab strides cell id spaces), not arena slot: slots are recycled
/// within a run, ids are not, and spill clones keep their id across
/// cells so cross-cell causality can be stitched by id alone.
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    segments: Vec<Vec<SpanRecord>>,
    /// Cleared segments kept for reuse (recycled, never freed).
    spare: Vec<Vec<SpanRecord>>,
    open_tasks: HashMap<u64, OpenSpan>,
    open_machines: HashMap<u64, OpenSpan>,
    recorded: u64,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closed records recorded so far.
    pub fn len(&self) -> usize {
        self.recorded as usize
    }

    /// True when no span has closed yet.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Spans still open (tasks + machines).
    pub fn open_count(&self) -> usize {
        self.open_tasks.len() + self.open_machines.len()
    }

    /// Closed records in close order.
    pub fn records(&self) -> impl Iterator<Item = &SpanRecord> {
        self.segments.iter().flatten()
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.segments.last().is_none_or(|s| s.len() == SEGMENT) {
            let seg = self
                .spare
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(SEGMENT));
            self.segments.push(seg);
        }
        self.segments.last_mut().expect("segment present").push(rec);
        self.recorded += 1;
    }

    /// Opens a task lifecycle span, closing any span already open on the
    /// subject at the same instant (a task is in exactly one lifecycle
    /// state at a time; an implicit close records `outcome =
    /// "superseded"` so the gap is visible rather than silent).
    pub fn open_task(&mut self, subject: u64, kind: &'static str, now: u64, cause: &'static str) {
        self.open_task_full(subject, kind, now, cause, "", "", 0, 0, 0);
    }

    /// [`SpanLog::open_task`] with the full decision record up front.
    #[allow(clippy::too_many_arguments)]
    pub fn open_task_full(
        &mut self,
        subject: u64,
        kind: &'static str,
        now: u64,
        cause: &'static str,
        plan: &'static str,
        detail: &'static str,
        attempts: u64,
        a: u64,
        b: u64,
    ) {
        if self.open_tasks.contains_key(&subject) {
            self.close_task(subject, now, "superseded");
        }
        self.open_tasks.insert(
            subject,
            OpenSpan {
                kind,
                start: now,
                cause,
                plan,
                detail,
                attempts,
                a,
                b,
            },
        );
    }

    /// Bumps the open span's attempt counter and refreshes its candidate
    /// estimate in place — no record is emitted, no allocation happens.
    /// This is what a `NoCapacity` scheduling attempt records.
    #[inline]
    pub fn note_attempt(&mut self, subject: u64, candidates: u64) {
        if let Some(open) = self.open_tasks.get_mut(&subject) {
            open.attempts += 1;
            open.b = candidates;
        }
    }

    /// Closes the subject's open span with only an outcome, keeping the
    /// decision record accumulated while open. No-op when nothing is
    /// open on the subject.
    pub fn close_task(&mut self, subject: u64, now: u64, outcome: &'static str) {
        if let Some(open) = self.open_tasks.remove(&subject) {
            self.push(finish_record(subject, "task", open, now, outcome));
        }
    }

    /// Closes the subject's open span, overriding plan/detail/payload
    /// with the closing decision (e.g. `queued` closes with the placer
    /// plan, chosen machine, and candidate count).
    #[allow(clippy::too_many_arguments)]
    pub fn close_task_with(
        &mut self,
        subject: u64,
        now: u64,
        outcome: &'static str,
        plan: &'static str,
        detail: &'static str,
        a: u64,
        b: u64,
    ) {
        if let Some(mut open) = self.open_tasks.remove(&subject) {
            open.plan = plan;
            open.detail = detail;
            open.a = a;
            open.b = b;
            self.push(finish_record(subject, "task", open, now, outcome));
        }
    }

    /// The kind of the subject's open span, if any (used to close
    /// conditionally, e.g. only a pending `spill_transit`).
    pub fn open_task_kind(&self, subject: u64) -> Option<&'static str> {
        self.open_tasks.get(&subject).map(|o| o.kind)
    }

    /// Records an instant (zero-duration) task span, e.g. `dead_letter`.
    #[allow(clippy::too_many_arguments)]
    pub fn instant_task(
        &mut self,
        subject: u64,
        kind: &'static str,
        now: u64,
        cause: &'static str,
        plan: &'static str,
        detail: &'static str,
        attempts: u64,
        a: u64,
    ) {
        self.push(SpanRecord {
            subject,
            group: "task",
            kind,
            start: now,
            end: now,
            cause,
            outcome: cause,
            plan,
            detail,
            attempts,
            a,
            b: 0,
        });
    }

    /// Opens a machine availability span (`machine_down`,
    /// `machine_drain`). Re-opening on an already-down machine keeps the
    /// earlier span (overlapping crash/drain depths collapse into one
    /// interval, closed by the last restore).
    pub fn open_machine(
        &mut self,
        subject: u64,
        kind: &'static str,
        now: u64,
        cause: &'static str,
        detail: &'static str,
    ) {
        self.open_machines.entry(subject).or_insert(OpenSpan {
            kind,
            start: now,
            cause,
            plan: "",
            detail,
            attempts: 0,
            a: 0,
            b: 0,
        });
    }

    /// Closes the machine's open availability span, if any.
    pub fn close_machine(&mut self, subject: u64, now: u64, outcome: &'static str) {
        if let Some(open) = self.open_machines.remove(&subject) {
            self.push(finish_record(subject, "machine", open, now, outcome));
        }
    }

    /// Records an instant control-plane decision span (autoscaler
    /// scale-up/down, fault-plane ownership override).
    #[allow(clippy::too_many_arguments)]
    pub fn instant_ctrl(
        &mut self,
        subject: u64,
        kind: &'static str,
        now: u64,
        cause: &'static str,
        plan: &'static str,
        detail: &'static str,
        a: u64,
        b: u64,
    ) {
        self.push(SpanRecord {
            subject,
            group: "ctrl",
            kind,
            start: now,
            end: now,
            cause,
            outcome: cause,
            plan,
            detail,
            attempts: 0,
            a,
            b,
        });
    }

    /// Closes every still-open span at the horizon with `end = horizon`
    /// and `outcome = "horizon"`. Subjects are walked in sorted order so
    /// the resulting record order is independent of hash-map iteration
    /// order (and therefore byte-deterministic across processes).
    pub fn close_all(&mut self, horizon: u64) {
        let mut tasks: Vec<u64> = self.open_tasks.keys().copied().collect();
        tasks.sort_unstable();
        for subject in tasks {
            self.close_task(subject, horizon, "horizon");
        }
        let mut machines: Vec<u64> = self.open_machines.keys().copied().collect();
        machines.sort_unstable();
        for subject in machines {
            self.close_machine(subject, horizon, "horizon");
        }
    }

    /// Clears the log for reuse, keeping segment buffers allocated
    /// (mirrors `TaskSlab` recycling: A/B comparison runs reuse the same
    /// arena without churning the allocator).
    pub fn recycle(&mut self) {
        for mut seg in self.segments.drain(..) {
            seg.clear();
            self.spare.push(seg);
        }
        self.open_tasks.clear();
        self.open_machines.clear();
        self.recorded = 0;
    }
}

fn finish_record(
    subject: u64,
    group: &'static str,
    open: OpenSpan,
    now: u64,
    outcome: &'static str,
) -> SpanRecord {
    SpanRecord {
        subject,
        group,
        kind: open.kind,
        start: open.start,
        end: now.max(open.start),
        cause: open.cause,
        outcome,
        plan: open.plan,
        detail: open.detail,
        attempts: open.attempts,
        a: open.a,
        b: open.b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_open_update_close_keeps_decision_record() {
        let mut log = SpanLog::new();
        log.open_task(7, "queued", 100, "arrival");
        log.note_attempt(7, 12);
        log.note_attempt(7, 9);
        log.close_task_with(7, 250, "placed", "best_fit", "candidate_driven", 3, 9);
        let recs: Vec<_> = log.records().copied().collect();
        assert_eq!(recs.len(), 1);
        let r = recs[0];
        assert_eq!((r.subject, r.kind, r.start, r.end), (7, "queued", 100, 250));
        assert_eq!((r.cause, r.outcome), ("arrival", "placed"));
        assert_eq!((r.plan, r.detail), ("best_fit", "candidate_driven"));
        assert_eq!((r.attempts, r.a, r.b), (2, 3, 9));
    }

    #[test]
    fn reopening_supersedes_the_open_span() {
        let mut log = SpanLog::new();
        log.open_task(1, "queued", 10, "arrival");
        log.open_task(1, "running", 20, "placed");
        let recs: Vec<_> = log.records().copied().collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, "queued");
        assert_eq!(recs[0].outcome, "superseded");
        assert_eq!(log.open_task_kind(1), Some("running"));
    }

    #[test]
    fn close_all_closes_at_horizon_in_sorted_subject_order() {
        let mut log = SpanLog::new();
        for id in [42u64, 3, 17] {
            log.open_task(id, "queued", id, "arrival");
        }
        log.open_machine(5, "machine_down", 50, "crash", "");
        log.close_all(1_000);
        assert_eq!(log.open_count(), 0);
        let recs: Vec<_> = log.records().copied().collect();
        let subjects: Vec<u64> = recs.iter().map(|r| r.subject).collect();
        assert_eq!(subjects, [3, 17, 42, 5]); // tasks sorted, then machines
        assert!(recs.iter().all(|r| r.end == 1_000));
        assert!(recs.iter().all(|r| r.outcome == "horizon"));
    }

    #[test]
    fn machine_reopen_collapses_into_one_interval() {
        let mut log = SpanLog::new();
        log.open_machine(2, "machine_down", 100, "crash", "");
        log.open_machine(2, "machine_down", 150, "crash", "");
        log.close_machine(2, 400, "restored");
        let recs: Vec<_> = log.records().copied().collect();
        assert_eq!(recs.len(), 1);
        assert_eq!((recs[0].start, recs[0].end), (100, 400));
    }

    #[test]
    fn steady_state_close_into_nonfull_segment_does_not_grow_arena() {
        let mut log = SpanLog::new();
        log.open_task(1, "queued", 0, "arrival");
        log.close_task(1, 1, "placed");
        let segs = log.segments.len();
        for i in 2..SEGMENT as u64 {
            log.open_task(i, "queued", i, "arrival");
            log.close_task(i, i + 1, "placed");
        }
        // Fills the segment exactly: still no growth.
        log.open_task(9_998, "queued", 0, "arrival");
        log.close_task(9_998, 1, "placed");
        assert_eq!(log.segments.len(), segs, "no new segment until full");
        log.open_task(9_999, "queued", 0, "arrival");
        log.close_task(9_999, 1, "placed");
        assert_eq!(log.segments.len(), segs + 1, "grows only when full");
    }

    #[test]
    fn recycle_keeps_segment_buffers() {
        let mut log = SpanLog::new();
        for i in 0..(SEGMENT as u64 * 2 + 5) {
            log.open_task(i, "queued", i, "arrival");
            log.close_task(i, i + 1, "placed");
        }
        let segs = log.segments.len();
        log.recycle();
        assert!(log.is_empty());
        assert_eq!(log.spare.len(), segs);
        // Refilling reuses the spare buffers: no fresh segments needed
        // until the old capacity is exhausted.
        for i in 0..SEGMENT as u64 {
            log.open_task(i, "queued", i, "arrival");
            log.close_task(i, i + 1, "placed");
        }
        assert_eq!(log.spare.len(), segs - 1);
    }
}
