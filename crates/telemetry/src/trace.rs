//! Bounded structured event trace: a preallocated ring that keeps the
//! last N events and dumps them as JSON on demand.

use serde::{Serialize, Value};

/// One structured trace event. Fields are deliberately flat `u64`s with
/// a `&'static str` kind tag: recording must not allocate (the ring sits
/// inside the zero-allocation scheduling pass) and must be deterministic
/// (everything here is sim-plane state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim time (µs) the event happened at.
    pub time: u64,
    /// Static event-kind tag (e.g. `"admit"`, `"place"`, `"spill_out"`).
    pub kind: &'static str,
    /// Primary subject (task id, machine id, …) — kind-specific.
    pub a: u64,
    /// Secondary detail (machine index, queue depth, …) — kind-specific.
    pub b: u64,
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("time".to_string(), Value::Num(self.time as f64)),
            ("kind".to_string(), Value::Str(self.kind.to_string())),
            ("a".to_string(), Value::Num(self.a as f64)),
            ("b".to_string(), Value::Num(self.b as f64)),
        ])
    }
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
///
/// The buffer is allocated once at construction; [`TraceRing::push`]
/// overwrites the oldest event when full and never allocates. The dump
/// ([`TraceRing::to_value`]) lists surviving events oldest-first along
/// with the total recorded count, so a reader can tell how many were
/// evicted.
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index the next event is written at once the buffer is full.
    head: usize,
    /// Total events ever recorded (≥ `buf.len()`).
    recorded: u64,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (capacity 0 records
    /// nothing and is the cheap "disabled" representation).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Records an event, evicting the oldest when full. Never allocates
    /// (the buffer was sized at construction).
    #[inline]
    pub fn push(&mut self, e: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Surviving events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

impl Serialize for TraceRing {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("recorded".to_string(), Value::Num(self.recorded as f64)),
            ("capacity".to_string(), Value::Num(self.capacity as f64)),
            (
                "events".to_string(),
                Value::Array(self.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent {
            time: t,
            kind: "test",
            a: t * 10,
            b: 0,
        }
    }

    #[test]
    fn keeps_the_last_n_in_order() {
        let mut r = TraceRing::new(3);
        for t in 0..5 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        let times: Vec<u64> = r.iter().map(|e| e.time).collect();
        assert_eq!(times, [2, 3, 4]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut r = TraceRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn wraparound_overwrites_oldest_across_many_cycles() {
        let mut r = TraceRing::new(4);
        // 3 full wrap cycles plus a partial one: survivors must always
        // be the most recent `capacity` events, oldest first, with the
        // head wrapping cleanly past the buffer end each cycle.
        for t in 0..15 {
            r.push(ev(t));
            let times: Vec<u64> = r.iter().map(|e| e.time).collect();
            let expect: Vec<u64> = (t.saturating_sub(3)..=t).collect();
            assert_eq!(times, expect, "after pushing {t}");
        }
        assert_eq!(r.recorded(), 15);
        assert_eq!(r.len(), 4);
        // The serialized dump reflects the same survivor window.
        let v = r.to_value();
        if let Value::Array(events) = v.get_field("events") {
            assert_eq!(events.len(), 4);
        } else {
            panic!("events not an array");
        }
    }

    #[test]
    fn push_never_reallocates() {
        let mut r = TraceRing::new(8);
        let cap_before = r.buf.capacity();
        for t in 0..100 {
            r.push(ev(t));
        }
        assert_eq!(r.buf.capacity(), cap_before);
    }
}
