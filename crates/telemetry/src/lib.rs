//! # ctlm-telemetry — deterministic metrics, tracing, and perf attribution
//!
//! Observability for the workspace, split into two strictly separated
//! planes:
//!
//! - **Sim plane** (deterministic): a [`Metrics`] registry of counters,
//!   gauges, and fixed log-bucket [`Histogram`]s keyed by names, fed from
//!   sim-time state only. Enabling it never changes report bytes, and its
//!   own JSON export is byte-identical for any `execution.threads` —
//!   every value is a function of the (deterministic) simulation, not of
//!   the host. The bounded [`TraceRing`] lives on this plane too: it
//!   records the last-N structured engine/kernel events for debugging
//!   divergences. The [`SpanLog`] flight recorder extends the plane with
//!   causal lifecycle spans and decision audits per task/machine.
//! - **Host plane** (wall-clock): [`PerfReport`] carries per-shard
//!   `run_before` / barrier-wait / outbox-drain timings from the parallel
//!   coordinator plus a [`HostFingerprint`] (cpu model, core count). It is
//!   emitted only into a `_perf` section that `--no-meta` and byte-compare
//!   gates exclude, so host noise can never leak into gated output.
//!
//! The subsystems themselves (`ctlm-sim`, `ctlm-sched`) stay free of any
//! dependency on this crate: they keep plain `u64` counters inline (cheap
//! enough to be always-on and allocation-free), and the lab harness
//! snapshots those into a `Metrics` registry at end of run. That is what
//! keeps the zero-allocation scheduling-pass invariant intact with
//! metrics enabled.

mod histogram;
mod host;
mod metrics;
mod perf;
mod spans;
mod trace;

pub use histogram::Histogram;
pub use host::HostFingerprint;
pub use metrics::Metrics;
pub use perf::{PerfReport, ShardPerf};
pub use spans::{SpanLog, SpanRecord, SCHEMA_VERSION};
pub use trace::{TraceEvent, TraceRing};
