//! Sweep-dispatch overhead of the `ctlm-lab` declarative harness.
//!
//! Measures what the harness *adds* around the kernel: spec
//! normalization, grid expansion (document rewriting + re-parse per
//! point), parallel fan-out on the rayon pool, and report aggregation.
//! The workload itself is kept tiny so the numbers track dispatch, not
//! simulation — compare `single_point` (one run, no grid) against
//! `grid_8_points` (2 knob values × 2 seeds × 2 repeats of the same
//! run) to see the per-point cost. Track alongside the BENCH_PR1/PR2
//! medians (`CTLM_BENCH_JSON=… cargo bench -p ctlm-bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use ctlm_lab::{run_spec, ExperimentSpec};

const TINY: &str = r#"{
    "name": "bench-tiny",
    "sim": {"cycle": 500000, "attempts_per_cycle": 3,
             "mean_runtime": 2000000, "horizon": 10000000, "seed": 3},
    "schedulers": ["main_only"],
    "workload": {"Synthetic": {
        "machines": [{"count": 4, "cpu": 1.0, "memory": 1.0}],
        "tasks": 40,
        "arrival": {"Uniform": {"gap": 100000}}
    }}
}"#;

const SWEEP: &str = r#"{
    "name": "bench-sweep",
    "sim": {"cycle": 500000, "attempts_per_cycle": 3,
             "mean_runtime": 2000000, "horizon": 10000000, "seed": 3},
    "schedulers": ["main_only"],
    "workload": {"Synthetic": {
        "machines": [{"count": 4, "cpu": 1.0, "memory": 1.0}],
        "tasks": 40,
        "arrival": {"Uniform": {"gap": 100000}}
    }},
    "sweep": {"knobs": [{"path": "sim.attempts_per_cycle", "values": [2, 4]}],
               "seeds": [3, 4], "repeats": 2}
}"#;

fn bench_sweep(c: &mut Criterion) {
    let single = ExperimentSpec::from_json(TINY).expect("tiny spec parses");
    let sweep = ExperimentSpec::from_json(SWEEP).expect("sweep spec parses");
    let mut group = c.benchmark_group("scenario_sweep");
    group.bench_function("single_point", |b| {
        b.iter(|| run_spec(&single).expect("single run"))
    });
    group.bench_function("grid_8_points", |b| {
        b.iter(|| run_spec(&sweep).expect("sweep run"))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
