//! Constraint-matching throughput — the AGOCS replay hot loop.
//!
//! Ground-truth labels require counting suitable machines per constrained
//! task; this bench measures that count at increasing cluster sizes
//! (sequential below the Rayon threshold, parallel above).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ctlm_agocs::{count_suitable, ClusterState};
use ctlm_data::compaction::collapse;
use ctlm_trace::{AttrValue, ConstraintOp, Machine, TaskConstraint};

fn cluster(n: usize) -> ClusterState {
    let mut s = ClusterState::new();
    for i in 0..n as u64 {
        let mut m = Machine::new(i, 0.5, 0.5);
        m.set_attr(0, AttrValue::Int(i as i64));
        m.set_attr(1, AttrValue::Int((i % 40) as i64));
        m.set_attr(2, AttrValue::Str(format!("k{}", i % 7)));
        s.add_machine(m);
    }
    s
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for n in [100usize, 1_000, 12_600] {
        let state = cluster(n);
        let reqs = collapse(&[
            TaskConstraint::new(0, ConstraintOp::GreaterThanEqual(5)),
            TaskConstraint::new(0, ConstraintOp::LessThan(n as i64 / 2)),
            TaskConstraint::new(2, ConstraintOp::NotEqual(AttrValue::from("k3"))),
        ])
        .unwrap();
        group.bench_with_input(BenchmarkId::new("count_suitable", n), &n, |b, _| {
            b.iter(|| count_suitable(std::hint::black_box(&state), std::hint::black_box(&reqs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
