//! Constraint-matching throughput — the AGOCS replay hot loop.
//!
//! Ground-truth labels require counting suitable machines per constrained
//! task. This bench measures the inverted-index path (`count_suitable`)
//! against the retained linear scan (`count_suitable_linear`) at
//! increasing cluster sizes, in the same run — the `BENCH_PR1.json`
//! speedup target (≥5× at 10k machines) reads straight off these ids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ctlm_agocs::matcher::count_suitable_linear;
use ctlm_agocs::{count_suitable, ClusterState};
use ctlm_data::compaction::collapse;
use ctlm_trace::{AttrValue, ConstraintOp, Machine, TaskConstraint};

fn cluster(n: usize) -> ClusterState {
    let mut s = ClusterState::new();
    for i in 0..n as u64 {
        let mut m = Machine::new(i, 0.5, 0.5);
        m.set_attr(0, AttrValue::Int(i as i64));
        m.set_attr(1, AttrValue::Int((i % 40) as i64));
        m.set_attr(2, AttrValue::Str(format!("k{}", i % 7)));
        s.add_machine(m);
    }
    s
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for n in [100usize, 1_000, 10_000] {
        let state = cluster(n);
        // A selective window plus a negative string constraint — the mix
        // real constrained tasks carry after compaction.
        let window = collapse(&[
            TaskConstraint::new(0, ConstraintOp::GreaterThanEqual(5)),
            TaskConstraint::new(0, ConstraintOp::LessThan(5 + n as i64 / 50)),
            TaskConstraint::new(2, ConstraintOp::NotEqual(AttrValue::from("k3"))),
        ])
        .unwrap();
        // A single-machine pin — the Group 0 shape the paper's analyzer
        // exists to catch.
        let pin = collapse(&[TaskConstraint::new(
            0,
            ConstraintOp::Equal(Some(AttrValue::Int(n as i64 / 2))),
        )])
        .unwrap();
        assert_eq!(
            count_suitable(&state, &window),
            count_suitable_linear(&state, &window)
        );
        assert_eq!(
            count_suitable(&state, &pin),
            count_suitable_linear(&state, &pin)
        );

        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| count_suitable(std::hint::black_box(&state), std::hint::black_box(&window)))
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| {
                count_suitable_linear(std::hint::black_box(&state), std::hint::black_box(&window))
            })
        });
        group.bench_with_input(BenchmarkId::new("indexed_pin", n), &n, |b, _| {
            b.iter(|| count_suitable(std::hint::black_box(&state), std::hint::black_box(&pin)))
        });
        group.bench_with_input(BenchmarkId::new("linear_pin", n), &n, |b, _| {
            b.iter(|| {
                count_suitable_linear(std::hint::black_box(&state), std::hint::black_box(&pin))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
