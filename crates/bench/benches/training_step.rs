//! §V timing claim: per-step (re)training cost.
//!
//! Two tiers, measured in the same run:
//!
//! * **`training_step/*_minibatch`** — one Listing-3 mini-batch step
//!   (forward → weighted cross-entropy → backward) at paper-shaped sizes,
//!   comparing the zero-allocation Workspace path on the blocked kernels
//!   (`optimized_minibatch`) against the seed's allocating formulation on
//!   the retained naive kernels (`naive_minibatch`). These two ids carry
//!   the `BENCH_PR1.json` ≥2× target.
//! * **`training_step/{growing_transfer,fully_retrain}`** — the paper's
//!   model-level comparison (Growing 1–6 min vs 7–42 min from scratch),
//!   at CI scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ctlm_agocs::Replayer;
use ctlm_core::{FullRetrainModel, GrowingModel, TrainConfig};
use ctlm_data::dataset::Dataset;
use ctlm_nn::{Adam, CrossEntropyLoss, Net, Optimizer, Workspace};
use ctlm_tensor::init::seeded_rng;
use ctlm_tensor::ops::naive;
use ctlm_tensor::{Csr, CsrBuilder, Matrix};
use ctlm_trace::{CellSet, Scale, TraceGenerator};

/// A CO-VV-shaped batch: wide, very sparse, labelled 0..26.
fn covv_batch(n: usize, d: usize, nnz: usize, seed: u64) -> (Csr, Vec<u8>) {
    use rand::Rng;
    let mut rng = seeded_rng(seed);
    let mut b = CsrBuilder::new(d);
    let mut y = Vec::new();
    for _ in 0..n {
        b.push_row((0..nnz).map(|_| (rng.gen_range(0..d), 1.0)));
        y.push(rng.gen_range(0..26));
    }
    (b.finish(), y)
}

/// The seed's training step, verbatim in structure: allocating clones at
/// every stage, naive reference kernels underneath. Two bare linear
/// layers (Listing 1), weighted cross-entropy, gradient accumulation.
fn naive_minibatch_step(
    w1: &Matrix,
    b1: &[f32],
    w2: &Matrix,
    b2: &[f32],
    weights: &[f32],
    x: &Csr,
    y: &[u8],
) -> (f32, Matrix, Matrix) {
    // forward (fresh matrices per stage, h cloned into the cache)
    let mut h = naive::csr_matmul_bt(x, w1);
    for r in 0..h.rows() {
        for (v, &b) in h.row_mut(r).iter_mut().zip(b1.iter()) {
            *v += b;
        }
    }
    let cached_h = h.clone();
    let mut logits = naive::matmul_bt(&h, w2);
    for r in 0..logits.rows() {
        for (v, &b) in logits.row_mut(r).iter_mut().zip(b2.iter()) {
            *v += b;
        }
    }
    // weighted cross-entropy (fresh softmax matrix)
    let probs = naive::softmax_rows(&logits);
    let mut loss = 0.0f64;
    let mut weight_sum = 0.0f64;
    for (i, &t) in y.iter().enumerate() {
        let w = weights[t as usize] as f64;
        loss -= w * (probs.get(i, t as usize).max(1e-12) as f64).ln();
        weight_sum += w;
    }
    let mut grad = probs.clone();
    let inv = 1.0 / weight_sum as f32;
    for (i, &t) in y.iter().enumerate() {
        let w = weights[t as usize];
        let row = grad.row_mut(i);
        for v in row.iter_mut() {
            *v *= w * inv;
        }
        row[t as usize] -= w * inv;
    }
    // backward (fresh temporaries, add_assign accumulation)
    let grad2 = grad.clone();
    let mut gw2 = Matrix::zeros(w2.rows(), w2.cols());
    gw2.add_assign(&naive::matmul_at(&grad2, &cached_h));
    let grad_h = naive::matmul(&grad2, w2);
    let mut gw1 = Matrix::zeros(w1.rows(), w1.cols());
    gw1.add_assign(&naive::csr_grad_weight(&grad_h, x));
    ((loss / weight_sum) as f32, gw1, gw2)
}

fn bench_minibatch(c: &mut Criterion) {
    // Paper-shaped step: batch 256, 4096 features, ~12 nnz/row,
    // hidden 30, 26 classes.
    let (x, y) = covv_batch(256, 4096, 12, 21);
    let loss_fn = CrossEntropyLoss::group0_boosted(26, 200.0);

    let mut group = c.benchmark_group("training_step");
    group.sample_size(20);

    let mut rng = seeded_rng(7);
    let mut net = Net::two_layer(4096, 30, 26, &mut rng);
    let mut ws = Workspace::new();
    net.train_batch(&x, &y, &loss_fn, &mut ws); // warm the workspace
    group.bench_function("optimized_minibatch", |b| {
        b.iter(|| net.train_batch(std::hint::black_box(&x), &y, &loss_fn, &mut ws))
    });

    let mut opt = Adam::paper_default();
    group.bench_function("optimized_minibatch_with_adam", |b| {
        b.iter(|| {
            let loss = net.train_batch(std::hint::black_box(&x), &y, &loss_fn, &mut ws);
            opt.step(&mut net);
            loss
        })
    });

    let reference = Net::two_layer(4096, 30, 26, &mut seeded_rng(7));
    let (w1, b1) = {
        let l = reference.input_layer();
        (l.weight.clone(), l.bias.clone())
    };
    let (w2, b2) = match &reference.layers()[1] {
        ctlm_nn::Layer::Linear(l) => (l.weight.clone(), l.bias.clone()),
        _ => unreachable!(),
    };
    group.bench_function("naive_minibatch", |b| {
        b.iter(|| {
            naive_minibatch_step(
                &w1,
                &b1,
                &w2,
                &b2,
                loss_fn.weights(),
                std::hint::black_box(&x),
                &y,
            )
        })
    });
    group.finish();
}

fn steps() -> (Dataset, Dataset) {
    let trace = TraceGenerator::generate_cell(
        CellSet::C2019c,
        Scale {
            machines: 150,
            collections: 900,
            seed: 77,
        },
    );
    let out = Replayer::default().replay(&trace);
    let first = out.steps.first().expect("steps").vv.clone();
    let last = out.steps.last().expect("steps").vv.clone();
    (first, last)
}

fn bench_models(c: &mut Criterion) {
    let (first, last) = steps();
    let cfg = TrainConfig {
        epochs_limit: 40,
        max_attempts: 2,
        ..TrainConfig::default()
    };

    let mut group = c.benchmark_group("training_step");
    group.sample_size(10);

    // Growing: warm-started on the first step, measured on the last.
    group.bench_function("growing_transfer", |b| {
        let mut warm = GrowingModel::new(cfg);
        warm.step(&first, 1);
        b.iter_batched(
            || warm.clone(),
            |mut m| m.step(&last, 2),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("fully_retrain", |b| {
        b.iter_batched(
            || FullRetrainModel::new(cfg),
            |mut m| m.step(&last, 2),
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_minibatch, bench_models);
criterion_main!(benches);
