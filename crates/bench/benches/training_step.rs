//! §V timing claim: per-step (re)training cost.
//!
//! The paper reports per-step wall times: Growing 1–6 min vs 7–42 min for
//! the from-scratch models (order-of-magnitude gap). This bench measures
//! one retraining step for each strategy on an identical dataset step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ctlm_agocs::Replayer;
use ctlm_baselines::{Classifier, MlpClassifier, RidgeClassifier, SgdClassifier};
use ctlm_core::{FullRetrainModel, GrowingModel, TrainConfig};
use ctlm_data::dataset::{Dataset, NUM_GROUPS};
use ctlm_trace::{CellSet, Scale, TraceGenerator};

fn steps() -> (Dataset, Dataset) {
    let trace = TraceGenerator::generate_cell(
        CellSet::C2019c,
        Scale { machines: 150, collections: 900, seed: 77 },
    );
    let out = Replayer::default().replay(&trace);
    let first = out.steps.first().expect("steps").vv.clone();
    let last = out.steps.last().expect("steps").vv.clone();
    (first, last)
}

fn bench_training(c: &mut Criterion) {
    let (first, last) = steps();
    let cfg = TrainConfig { epochs_limit: 40, max_attempts: 2, ..TrainConfig::default() };

    let mut group = c.benchmark_group("training_step");
    group.sample_size(10);

    // Growing: warm-started on the first step, measured on the last.
    group.bench_function("growing_transfer", |b| {
        let mut warm = GrowingModel::new(cfg);
        warm.step(&first, 1);
        b.iter_batched(
            || warm.clone(),
            |mut m| m.step(&last, 2),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("fully_retrain", |b| {
        b.iter_batched(
            || FullRetrainModel::new(cfg),
            |mut m| m.step(&last, 2),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("ridge_fit", |b| {
        b.iter_batched(
            || RidgeClassifier::new(NUM_GROUPS),
            |mut m| m.fit(&last.x, &last.y),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("sgd_fit", |b| {
        b.iter_batched(
            || {
                let mut s = SgdClassifier::new(NUM_GROUPS, 3);
                s.max_iter = 30;
                s
            },
            |mut m| m.fit(&last.x, &last.y),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("mlp_fit", |b| {
        b.iter_batched(
            || {
                let mut m = MlpClassifier::paper_default(NUM_GROUPS, 3);
                m.max_iter = 40;
                m
            },
            |mut m| m.fit(&last.x, &last.y),
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
