//! Placement throughput — the scheduler's per-task hot loop.
//!
//! Measures capacity-indexed best-fit ([`best_fit`]) against the
//! retained linear reference ([`best_fit_linear`]) on identically loaded
//! clusters at 1k/10k/100k machines, for the request mix the Fig. 3
//! simulation issues (unconstrained background tasks, windowed
//! constraints, single-machine pins), plus a scaled Fig. 3 scenario run
//! on the kernel. The `BENCH_PR4.json` acceptance target (indexed ≥ 5×
//! linear at 100k machines) reads straight off the
//! `placement/{indexed,linear}/100000` ids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ctlm_data::compaction::collapse;
use ctlm_sched::engine::{SimConfig, Simulator};
use ctlm_sched::placement::{best_fit, best_fit_linear, Placement};
use ctlm_sched::scheduler::MainOnly;
use ctlm_sched::{PendingTask, SchedCluster};
use ctlm_trace::{AttrValue, ConstraintOp, Machine, TaskConstraint};

/// A fleet with the attribute mix of the `matching` bench, partially
/// loaded so the capacity buckets are spread (the steady-state regime —
/// an all-empty fleet would leave one giant full-capacity bucket).
fn loaded_cluster(n: usize) -> SchedCluster {
    let mut ms = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let mut m = Machine::new(i, 1.0, 1.0);
        m.set_attr(0, AttrValue::Int(i as i64));
        m.set_attr(1, AttrValue::Int((i % 40) as i64));
        m.set_attr(2, AttrValue::Str(format!("k{}", i % 7)));
        ms.push(m);
    }
    let mut c = SchedCluster::from_machines(ms);
    let mut task_id = 0u64;
    for i in 0..n as u64 {
        // Deterministic mixed load: ~2/3 of machines carry 1–3 tasks of
        // binary-fraction sizes, leaving varied free-capacity buckets.
        for k in 0..(i % 4) {
            let s = 0.125 * ((i + k) % 3 + 1) as f64;
            if c.fits(i, s, s) {
                c.place(i, task_id, s, s, 2);
                task_id += 1;
            }
        }
    }
    c
}

fn probe(reqs: Vec<ctlm_data::compaction::AttrRequirement>, cpu: f64) -> PendingTask {
    PendingTask {
        id: u64::MAX,
        collection: 0,
        cpu,
        memory: cpu,
        priority: 5,
        reqs,
        arrival: 0,
        truth_group: 25,
    }
}

/// The request mix: unconstrained, a selective window, a one-machine pin.
fn probes(n: usize) -> Vec<PendingTask> {
    let window = collapse(&[
        TaskConstraint::new(0, ConstraintOp::GreaterThanEqual(n as i64 / 4)),
        TaskConstraint::new(0, ConstraintOp::LessThan(n as i64 / 4 + n as i64 / 50)),
    ])
    .unwrap();
    let pin = collapse(&[TaskConstraint::new(
        0,
        ConstraintOp::Equal(Some(AttrValue::Int(n as i64 / 2))),
    )])
    .unwrap();
    vec![probe(vec![], 0.25), probe(window, 0.25), probe(pin, 0.25)]
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    for n in [1_000usize, 10_000, 100_000] {
        let cluster = loaded_cluster(n);
        let mix = probes(n);
        for t in &mix {
            assert_eq!(
                best_fit(&cluster, t),
                best_fit_linear(&cluster, t),
                "indexed and linear must agree before being compared"
            );
        }
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            let mut k = 0usize;
            b.iter(|| {
                k += 1;
                best_fit(
                    std::hint::black_box(&cluster),
                    std::hint::black_box(&mix[k % mix.len()]),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut k = 0usize;
            b.iter(|| {
                k += 1;
                best_fit_linear(
                    std::hint::black_box(&cluster),
                    std::hint::black_box(&mix[k % mix.len()]),
                )
            })
        });
        // The mutation path: a full place → release round trip through
        // the incremental capacity-index maintenance.
        group.bench_with_input(BenchmarkId::new("indexed_churn", n), &n, |b, _| {
            let mut cluster = loaded_cluster(n);
            let t = probe(vec![], 0.25);
            b.iter(|| match best_fit(&cluster, &t) {
                Placement::Placed(m) => {
                    cluster.place(m, u64::MAX, t.cpu, t.memory, t.priority);
                    assert!(cluster.release(m, u64::MAX));
                }
                other => panic!("loaded cluster must still fit 0.25: {other:?}"),
            })
        });
    }
    group.finish();
}

/// A scaled Fig. 3 shape on the kernel: 2 000 machines, 4 000 tasks,
/// head-of-line contention — end-to-end cost of the admission → place →
/// complete cycle with the capacity index and timer-wheel lane engaged.
fn bench_fig3_scaled(c: &mut Criterion) {
    let n = 2_000usize;
    let mut ms = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let mut m = Machine::new(i, 1.0, 1.0);
        m.set_attr(0, AttrValue::Int(i as i64));
        ms.push(m);
    }
    let mut arrivals: Vec<PendingTask> = (0..4_000u64)
        .map(|k| PendingTask {
            id: k,
            collection: 1,
            cpu: 0.25,
            memory: 0.25,
            priority: 2,
            reqs: vec![],
            arrival: k * 10_000,
            truth_group: 25,
        })
        .collect();
    for j in 0..20u64 {
        let reqs = collapse(&[TaskConstraint::new(
            0,
            ConstraintOp::Equal(Some(AttrValue::Int((j * 97) as i64 % n as i64))),
        )])
        .unwrap();
        arrivals.push(PendingTask {
            id: 100_000 + j,
            collection: 2,
            cpu: 0.4,
            memory: 0.4,
            priority: 6,
            reqs,
            arrival: j * 1_500_000,
            truth_group: 0,
        });
    }
    arrivals.sort_by_key(|t| t.arrival);
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 64,
        mean_runtime: 8_000_000,
        horizon: 60_000_000,
        seed: 17,
    };
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    group.bench_function("fig3_scaled_2k_machines", |b| {
        let simulator = Simulator::new(config);
        let mut cluster = SchedCluster::from_machines(ms.clone());
        b.iter(|| {
            let r = simulator.run(&mut cluster, &arrivals, &mut MainOnly);
            assert!(r.placed.len() > 3_000, "scenario must mostly place");
            r.placed.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_placement, bench_fig3_scaled);
criterion_main!(benches);
