//! Fault-plane hot paths: the per-loss retry decision and the whole
//! crash → requeue → replace round trip on the kernel.
//!
//! Retry policies run once per crash-lost task, inside the engine's
//! crash handler — `faults/retry_*_x16` prices that decision (batched
//! ×16 like the autoscale policy benches; a single call is too small to
//! gate against noise). `faults/crash_recovery_roundtrip` prices the
//! full robustness loop end to end: a zone crash loses running tasks,
//! the retry policy backs them off and requeues, the autoscaler reads
//! the capacity loss as a scale-up signal and orders replacements, and
//! the recovered machines rejoin — the scenario every chaos spec in
//! `experiments/` exercises, kept under the 1.25× `bench_check` gate.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ctlm_autoscale::{AutoscaleConfig, Autoscaler, ProvisionDelay, ThresholdStep};
use ctlm_sched::engine::{SimConfig, Simulator, PRIO_STATE};
use ctlm_sched::faults::{ExponentialBackoff, FaultPlan, FaultPlane, FixedRetry, RetryPolicy};
use ctlm_sched::scenario::attach_source;
use ctlm_sched::scheduler::MainOnly;
use ctlm_sched::{OwnershipGuard, PendingTask, SchedCluster, SchedEvent};
use ctlm_trace::Machine;

/// Prices one retry decision: 16 policy calls across a rotating attempt
/// number, summing the granted delays (dead-letters contribute zero).
fn bench_retry_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults");
    group.bench_function("retry_fixed_x16", |b| {
        let policy = FixedRetry {
            delay: 2_000_000,
            budget: 3,
        };
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            (0..16u32)
                .map(|k| {
                    policy
                        .delay(std::hint::black_box(k % 5), &mut rng)
                        .unwrap_or(0)
                })
                .sum::<u64>()
        })
    });
    group.bench_function("retry_backoff_x16", |b| {
        let policy = ExponentialBackoff {
            base: 1_000_000,
            cap: 60_000_000,
            budget: 3,
            jitter: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            (0..16u32)
                .map(|k| {
                    policy
                        .delay(std::hint::black_box(k % 5), &mut rng)
                        .unwrap_or(0)
                })
                .sum::<u64>()
        })
    });
    group.finish();
}

/// The full crash → requeue → replace loop: 120 tasks on 6 machines,
/// two zone crashes mid-run with exponential-backoff retries, and a
/// threshold autoscaler ordering replacement capacity for the loss.
fn bench_crash_recovery_roundtrip(c: &mut Criterion) {
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 8,
        mean_runtime: 12_000_000,
        horizon: 90_000_000,
        seed: 11,
    };
    let arrivals: Vec<PendingTask> = (0..120u64)
        .map(|k| PendingTask {
            id: k,
            collection: 1,
            cpu: 0.3,
            memory: 0.3,
            priority: 2,
            reqs: vec![],
            arrival: k * 150_000,
            truth_group: 25,
        })
        .collect();
    let machine_ids: Vec<u64> = (0..6).collect();
    let mut group = c.benchmark_group("faults");
    group.sample_size(10);
    group.bench_function("crash_recovery_roundtrip", |b| {
        b.iter(|| {
            let simulator = Simulator::new(config);
            let mut scheduler = MainOnly;
            let cluster =
                SchedCluster::from_machines(machine_ids.iter().map(|&i| Machine::new(i, 1.0, 1.0)));
            let mut harness = simulator.harness(cluster, &arrivals, &mut scheduler);
            harness.state().borrow_mut().enable_faults(
                Box::new(ExponentialBackoff {
                    base: 1_000_000,
                    cap: 8_000_000,
                    budget: 3,
                    jitter: 0.5,
                }),
                config.seed,
            );
            let guard = OwnershipGuard::new();
            let plan = FaultPlan::zone_crashes(
                13,
                &machine_ids,
                3,
                2,
                (10_000_000, 50_000_000),
                20_000_000,
            );
            let plane = FaultPlane::new(plan, harness.engine).with_guard(guard.clone());
            let first = plane.first_time();
            attach_source(&mut harness, "faults", plane, first, PRIO_STATE);
            let cfg = AutoscaleConfig {
                warm_pool: 1,
                delay: ProvisionDelay::Fixed(3_000_000),
                ..AutoscaleConfig::new(4, 12, 2_000_000, &config)
            };
            let (scaler, _stats) = Autoscaler::new(
                cfg,
                Box::new(ThresholdStep::default()),
                harness.state(),
                guard,
            );
            let id = harness.sim.add_component("autoscaler", scaler);
            harness
                .sim
                .schedule_prio(0, PRIO_STATE, id, id, SchedEvent::Wake);
            let state = harness.state();
            let (_, result) = harness.run();
            let lost = state
                .borrow()
                .fault_stats()
                .map(|f| f.tasks_lost)
                .unwrap_or(0);
            assert!(lost > 0, "the crashes must cost running work");
            result.placed.len() + result.failed_permanently
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_retry_policies,
    bench_crash_recovery_roundtrip
);
criterion_main!(benches);
