//! The “almost in real time” claim: per-task analyzer scoring latency.
//!
//! The Growing model “operates almost in real time, enabling rapid
//! evaluation of cluster task queues as tasks arrive”. This bench
//! measures single-task prediction and batch scoring.

use criterion::{criterion_group, criterion_main, Criterion};

use ctlm_agocs::Replayer;
use ctlm_core::{GrowingModel, TaskCoAnalyzer, TrainConfig};
use ctlm_trace::{AttrValue, CellSet, ConstraintOp, Scale, TaskConstraint, TraceGenerator};

fn bench_inference(c: &mut Criterion) {
    let trace = TraceGenerator::generate_cell(
        CellSet::C2019c,
        Scale {
            machines: 150,
            collections: 900,
            seed: 78,
        },
    );
    let out = Replayer::default().replay(&trace);
    let cfg = TrainConfig {
        epochs_limit: 40,
        max_attempts: 2,
        ..TrainConfig::default()
    };
    let mut model = GrowingModel::new(cfg);
    for (i, s) in out.steps.iter().enumerate() {
        model.step(&s.vv, i as u64);
    }
    let analyzer = TaskCoAnalyzer::new(model.to_net(), out.vocab.clone());
    let node_attr = trace.catalog.get("node_index").expect("known attribute");
    let constraints = vec![
        TaskConstraint::new(node_attr, ConstraintOp::GreaterThanEqual(10)),
        TaskConstraint::new(node_attr, ConstraintOp::LessThan(60)),
    ];
    let single = vec![TaskConstraint::new(
        node_attr,
        ConstraintOp::Equal(Some(AttrValue::Int(17))),
    )];

    let mut group = c.benchmark_group("inference");
    group.bench_function("predict_group_window_task", |b| {
        b.iter(|| {
            analyzer
                .predict_group(std::hint::black_box(&constraints))
                .unwrap()
        })
    });
    group.bench_function("predict_group_single_node_task", |b| {
        b.iter(|| {
            analyzer
                .predict_group(std::hint::black_box(&single))
                .unwrap()
        })
    });
    let last = &out.steps.last().expect("steps").vv;
    group.bench_function("batch_predict_full_dataset", |b| {
        let net = model.to_net();
        b.iter(|| net.predict(std::hint::black_box(&last.x)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
