//! Parallel-dispatch overhead of the rayon shim.
//!
//! The shim used to spawn scoped threads on every parallel call; it now
//! feeds a persistent worker pool. This bench isolates the per-call
//! dispatch cost on a small payload (the regime `PAR_THRESHOLD` guards):
//! run it twice to compare —
//!
//! ```text
//! RAYON_NUM_THREADS=4 cargo bench -p ctlm-bench --bench par_dispatch
//! RAYON_NUM_THREADS=4 CTLM_RAYON_DISPATCH=scoped \
//!     cargo bench -p ctlm-bench --bench par_dispatch
//! ```
//!
//! On a single-core host without `RAYON_NUM_THREADS`, both modes run
//! inline and the numbers converge (the fast path spawns nothing).

use criterion::{criterion_group, criterion_main, Criterion};
use rayon::prelude::*;

fn bench_dispatch(c: &mut Criterion) {
    let mode =
        if std::env::var("CTLM_RAYON_DISPATCH").is_ok_and(|v| v.eq_ignore_ascii_case("scoped")) {
            "scoped"
        } else {
            "pool"
        };
    let data: Vec<f32> = (0..4096).map(|i| i as f32 * 0.5).collect();
    let mut group = c.benchmark_group("par_dispatch");
    group.bench_function(format!("{mode}/map_collect_4096"), |b| {
        b.iter(|| {
            let v: Vec<f32> = data.par_iter().map(|x| x * 2.0 + 1.0).collect();
            v
        })
    });
    group.bench_function(format!("{mode}/sum_4096"), |b| {
        b.iter(|| data.par_iter().map(|x| x * x).sum::<f32>())
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
