//! Dataset-generation throughput (paper Fig. 1 pipeline).
//!
//! Measures full trace replay (event handling + matching + encoding) and
//! the CO-VV row encoder in isolation at a paper-scale feature width.

use criterion::{criterion_group, criterion_main, Criterion};

use ctlm_agocs::Replayer;
use ctlm_data::compaction::collapse;
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_data::vocab::ValueVocab;
use ctlm_trace::{AttrValue, CellSet, ConstraintOp, Scale, TaskConstraint, TraceGenerator};

fn bench_dataset_gen(c: &mut Criterion) {
    let trace = TraceGenerator::generate_cell(
        CellSet::C2019c,
        Scale {
            machines: 120,
            collections: 500,
            seed: 79,
        },
    );
    let mut group = c.benchmark_group("dataset_gen");
    group.sample_size(10);
    group.bench_function("replay_small_trace", |b| {
        b.iter(|| Replayer::default().replay(std::hint::black_box(&trace)))
    });

    // Row encoding against a paper-scale vocabulary (~16k columns).
    let mut vocab = ValueVocab::new();
    for v in 0..12_000 {
        vocab.observe(0, &AttrValue::Int(v));
    }
    for v in 0..4_000 {
        vocab.observe(1, &AttrValue::Int(v));
    }
    let reqs = collapse(&[
        TaskConstraint::new(0, ConstraintOp::GreaterThanEqual(100)),
        TaskConstraint::new(0, ConstraintOp::LessThan(700)),
    ])
    .unwrap();
    group.bench_function("co_vv_encode_16k_columns", |b| {
        b.iter(|| CoVvEncoder.encode_requirements(std::hint::black_box(&reqs), &vocab))
    });
    group.finish();
}

criterion_group!(benches, bench_dataset_gen);
criterion_main!(benches);
