//! Arrival generation: the streaming decoder against the materialised
//! build, plus the steady-state chunk-refill cost the engine pays.
//!
//! Three questions, on a synthetic workload with Pareto-sized tasks,
//! exponential gaps and a restrictive (Group-0) run to merge:
//!
//! * **`materialise_*`** — drain the generator into one
//!   capacity-reserved list, exactly what `build_cell` does on the
//!   classic path (the old full-list `sort_by_key` is gone: the two
//!   pre-sorted runs merge in one pass, so this is the lower bound for
//!   any up-front build).
//! * **`stream_*`** — same tasks through an 8192-task recycled chunk
//!   buffer: what a streaming cell pays in total, with peak memory one
//!   chunk instead of the whole population.
//! * **`chunk_refill_8192`** — one refill from a long-lived stream: the
//!   per-epoch latency bump a streaming cell sees when its buffer runs
//!   dry mid-run.
//!
//! Record with `CTLM_BENCH_JSON=$PWD/out.json cargo bench -p ctlm-bench
//! --bench arrivals`; gated by `bench_check` against `BENCH_PR7.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use ctlm_lab::spec::{ArrivalProcess, MachineGroup, RestrictiveSpec, SizeDist, SyntheticWorkload};
use ctlm_lab::stream::SyntheticStream;
use ctlm_sched::{ArrivalStream, SimConfig};

const CHUNK: usize = 8_192;

fn workload(tasks: usize) -> SyntheticWorkload {
    SyntheticWorkload {
        machines: vec![MachineGroup {
            count: 1_000,
            cpu: 1.0,
            memory: 1.0,
        }],
        tasks,
        arrival: ArrivalProcess::Exponential { mean_gap: 2_000 },
        cpu: SizeDist::Pareto {
            lo: 0.02,
            hi: 0.5,
            alpha: 1.2,
        },
        memory: SizeDist::Fixed(0.05),
        priority: 2,
        restrictive: Some(RestrictiveSpec {
            count: 100,
            start: 1_000_000,
            period: 2_000_000,
            cpu: 0.2,
            priority: 6,
        }),
    }
}

fn bench_arrivals(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrivals");
    group.sample_size(10);
    let sim = SimConfig {
        seed: 7,
        ..SimConfig::default()
    };
    for (label, tasks) in [("100k", 100_000usize), ("1m", 1_000_000)] {
        let w = workload(tasks);
        group.bench_function(format!("materialise_{label}"), |b| {
            b.iter(|| {
                let mut all = Vec::with_capacity(tasks + 128);
                let mut s = SyntheticStream::new(&w, &sim, 0, 0, 65_536).expect("stream");
                while s.refill(&mut all) > 0 {}
                all.len()
            })
        });
        group.bench_function(format!("stream_{label}"), |b| {
            b.iter(|| {
                let mut buf = Vec::with_capacity(CHUNK);
                let mut s = SyntheticStream::new(&w, &sim, 0, 0, CHUNK).expect("stream");
                let mut total = 0usize;
                loop {
                    buf.clear();
                    let got = s.refill(&mut buf);
                    if got == 0 {
                        break;
                    }
                    total += got;
                }
                total
            })
        });
    }
    // Steady-state refill: the stream is built once (the construction
    // burn is setup, not the measurement) and rebuilt only when a
    // 10M-task population runs dry.
    let deep = workload(10_000_000);
    let mut s = SyntheticStream::new(&deep, &sim, 0, 0, CHUNK).expect("stream");
    let mut buf = Vec::with_capacity(CHUNK);
    group.bench_function("chunk_refill_8192", |b| {
        b.iter(|| {
            buf.clear();
            if s.refill(&mut buf) == 0 {
                s = SyntheticStream::new(&deep, &sim, 0, 0, CHUNK).expect("stream");
                s.refill(&mut buf);
            }
            buf.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_arrivals);
criterion_main!(benches);
