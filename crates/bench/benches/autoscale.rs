//! Autoscale hot paths: the per-tick policy decision and placement into
//! a fleet that mutates under it.
//!
//! Two costs matter when a control plane joins the kernel: the policy
//! evaluation itself (`autoscale/policy_*` — pure sizing functions over
//! sampled signals), and what fleet mutation does to the placement hot
//! loop (`autoscale/grow_place_10000` — a join → place → release →
//! drain round trip against the incremental capacity/attribute
//! indexes). The latter is the acceptance guard for PR-5: placement
//! medians must stay at indexed speed while machines come and go
//! mid-run. `autoscale/elastic_small` prices a whole elastic scenario
//! on the kernel.

use criterion::{criterion_group, criterion_main, Criterion};

use ctlm_autoscale::{
    AutoscaleConfig, AutoscalePolicy, Autoscaler, Predictive, ProvisionDelay, Signals,
    TargetTracking, ThresholdStep,
};
use ctlm_sched::engine::{SimConfig, Simulator, PRIO_STATE};
use ctlm_sched::placement::{best_fit, Placement};
use ctlm_sched::scheduler::MainOnly;
use ctlm_sched::{OwnershipGuard, PendingTask, SchedCluster, SchedEvent};
use ctlm_trace::Machine;

/// A rotating, deterministic signal mix: idle, loaded, backlogged.
fn signal_mix() -> Vec<Signals> {
    (0..16u64)
        .map(|k| Signals {
            now: k * 2_000_000,
            fleet: 8 + (k % 5) as usize,
            pending: ((k * 7) % 23) as usize,
            utilisation: ((k * 13) % 100) as f64 / 100.0,
            admitted_delta: (k * 11) % 40,
            no_capacity_delta: (k * 3) % 9,
            recent_latency_mean: Some(250_000.0 + k as f64 * 10_000.0),
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("autoscale");
    let mix = signal_mix();
    // Each iteration runs the whole 16-signal mix: single decisions sit
    // around a nanosecond, too small to gate against run-to-run noise.
    group.bench_function("policy_threshold_x16", |b| {
        let mut p = ThresholdStep::default();
        b.iter(|| {
            mix.iter()
                .map(|s| p.desired_fleet(std::hint::black_box(s)))
                .sum::<usize>()
        })
    });
    group.bench_function("policy_target_tracking_x16", |b| {
        let mut p = TargetTracking::default();
        b.iter(|| {
            mix.iter()
                .map(|s| p.desired_fleet(std::hint::black_box(s)))
                .sum::<usize>()
        })
    });
    group.bench_function("policy_predictive_x16", |b| {
        let mut p = Predictive::new(8, 1.2, 0.25, 10_000_000, 1.0);
        b.iter(|| {
            mix.iter()
                .map(|s| p.desired_fleet(std::hint::black_box(s)))
                .sum::<usize>()
        })
    });
    group.finish();
}

/// Placement while the fleet mutates: each iteration joins a machine,
/// places into the grown fleet (capacity + attribute indexes update
/// incrementally), releases, then drains the joiner back out — the
/// full add/place/remove cycle an elastic cell exercises continuously.
fn bench_grow_place(c: &mut Criterion) {
    let n = 10_000usize;
    let mut cluster = SchedCluster::from_machines((0..n as u64).map(|i| {
        let mut m = Machine::new(i, 1.0, 1.0);
        m.set_attr(0, ctlm_trace::AttrValue::Int(i as i64));
        m
    }));
    let probe = PendingTask {
        id: u64::MAX,
        collection: 0,
        cpu: 0.25,
        memory: 0.25,
        priority: 5,
        reqs: vec![],
        arrival: 0,
        truth_group: 25,
    };
    let joiner_id = (1u64 << 48) + 1;
    let mut group = c.benchmark_group("autoscale");
    group.bench_function("grow_place_10000", |b| {
        b.iter(|| {
            cluster.add_machine(Machine::new(joiner_id, 1.0, 1.0));
            match best_fit(&cluster, std::hint::black_box(&probe)) {
                Placement::Placed(m) => {
                    cluster.place(m, u64::MAX, probe.cpu, probe.memory, probe.priority);
                    assert!(cluster.release(m, u64::MAX));
                }
                other => panic!("fleet must fit the probe: {other:?}"),
            }
            cluster.remove_machine(joiner_id);
            cluster.take_offline(joiner_id).expect("joiner parked");
        })
    });
    group.finish();
}

/// A small end-to-end elastic scenario: 150 bursty tasks against a
/// 3-machine fleet, threshold policy, warm pool, drain-based
/// scale-down — the whole control loop on the kernel.
fn bench_elastic_small(c: &mut Criterion) {
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 8,
        mean_runtime: 8_000_000,
        horizon: 90_000_000,
        seed: 11,
    };
    let arrivals: Vec<PendingTask> = (0..150u64)
        .map(|k| PendingTask {
            id: k,
            collection: 1,
            cpu: 0.3,
            memory: 0.3,
            priority: 2,
            reqs: vec![],
            arrival: 5_000_000 + k * 80_000,
            truth_group: 25,
        })
        .collect();
    let mut group = c.benchmark_group("autoscale");
    group.sample_size(10);
    group.bench_function("elastic_small", |b| {
        b.iter(|| {
            let simulator = Simulator::new(config);
            let mut scheduler = MainOnly;
            let cluster = SchedCluster::from_machines((0..3u64).map(|i| Machine::new(i, 1.0, 1.0)));
            let mut harness = simulator.harness(cluster, &arrivals, &mut scheduler);
            let cfg = AutoscaleConfig {
                warm_pool: 1,
                delay: ProvisionDelay::Fixed(3_000_000),
                ..AutoscaleConfig::new(2, 12, 2_000_000, &config)
            };
            let (scaler, stats) = Autoscaler::new(
                cfg,
                Box::new(ThresholdStep::default()),
                harness.state(),
                OwnershipGuard::new(),
            );
            let id = harness.sim.add_component("autoscaler", scaler);
            harness
                .sim
                .schedule_prio(0, PRIO_STATE, id, id, SchedEvent::Wake);
            let (_, result) = harness.run();
            let peak = stats.borrow().peak_active();
            assert!(peak > 3, "the burst must grow the fleet");
            result.placed.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_grow_place,
    bench_elastic_small
);
criterion_main!(benches);
