//! Epoch-sharded multi-cell execution: kernel sharding and barrier
//! costs under the `ctlm-lab` harness.
//!
//! Two questions, at a fixed total workload (64 machines, 3200 tasks —
//! split evenly across cells so only the topology changes):
//!
//! * **Sharding matrix** — `cellsN_threadsT`: the same fleet as 1 cell
//!   (classic single-timeline path), then 4 and 8 cells under the
//!   epoch-barrier coordinator at 1/2/4 worker threads. Reports are
//!   bit-identical across T by construction; the medians price the
//!   coordination (and, on multi-core hosts, the speedup).
//! * **Barrier floor** — `barrier_overhead_empty_*`: an 8-cell fleet
//!   with zero tasks, so each epoch carries exactly one cycle-timer
//!   event per cell and the run is ~pure barrier machinery (120 busy
//!   epochs at the 500 ms cycle / 250 µs-aligned epoch). The
//!   sequential-vs-threads-4 gap divided by 120 is the per-epoch
//!   dispatch overhead.
//!
//! Record with `CTLM_BENCH_JSON=$PWD/out.json cargo bench -p ctlm-bench
//! --bench multicell`; gated by `bench_check` against `BENCH_PR6.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use ctlm_lab::{run_spec, ExperimentSpec};

const TOTAL_MACHINES: usize = 64;
const TOTAL_TASKS: usize = 3200;

/// A fleet of `cells` equal cells holding the fixed total workload.
fn fleet_spec(cells: usize, threads: usize, tasks_total: usize) -> ExperimentSpec {
    let machines = TOTAL_MACHINES / cells;
    let tasks = tasks_total / cells;
    // Fixed total arrival rate: per-cell gaps stretch with the split.
    let gap = 15_000 * cells;
    let cell_json = |i: usize| {
        format!(
            r#"{{"name": "cell-{i}", "workload": {{"Synthetic": {{
                "machines": [{{"count": {machines}, "cpu": 1.0, "memory": 1.0}}],
                "tasks": {tasks},
                "arrival": {{"Uniform": {{"gap": {gap}}}}},
                "cpu": {{"Fixed": 0.3}}, "memory": {{"Fixed": 0.3}},
                "priority": 2}}}}}}"#
        )
    };
    let cells_json: Vec<String> = (0..cells).map(cell_json).collect();
    let json = format!(
        r#"{{
        "name": "bench-multicell-{cells}",
        "sim": {{"cycle": 500000, "attempts_per_cycle": 64,
                 "mean_runtime": 5000000, "horizon": 60000000, "seed": 9}},
        "schedulers": ["main_only"],
        "execution": {{"threads": {threads}, "epoch_us": 250000}},
        "cells": [{}]
    }}"#,
        cells_json.join(",")
    );
    ExperimentSpec::from_json(&json).expect("bench spec parses")
}

fn bench_multicell(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicell");
    group.sample_size(10);
    let single = fleet_spec(1, 1, TOTAL_TASKS);
    group.bench_function("cells1_threads1", |b| {
        b.iter(|| run_spec(&single).expect("run"))
    });
    for cells in [4usize, 8] {
        for threads in [1usize, 2, 4] {
            let spec = fleet_spec(cells, threads, TOTAL_TASKS);
            group.bench_function(format!("cells{cells}_threads{threads}"), |b| {
                b.iter(|| run_spec(&spec).expect("run"))
            });
        }
    }
    // Empty-traffic barrier floor: 8 cells, no tasks, only cycle timers.
    let empty_seq = fleet_spec(8, 1, 0);
    let empty_t4 = fleet_spec(8, 4, 0);
    group.bench_function("barrier_overhead_empty_seq", |b| {
        b.iter(|| run_spec(&empty_seq).expect("run"))
    });
    group.bench_function("barrier_overhead_empty_t4", |b| {
        b.iter(|| run_spec(&empty_t4).expect("run"))
    });
    group.finish();
}

criterion_group!(benches, bench_multicell);
criterion_main!(benches);
