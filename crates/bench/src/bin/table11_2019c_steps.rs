//! Table XI — detailed per-step run on clusterdata-2019c.
//!
//! Each row is one feature-array extension (simulation day/hour/minute,
//! width, new columns) with the Growing and Fully-Retrain models'
//! accuracy, Group-0 F1 and epoch count at that step.

use ctlm_bench::{opt_f1, replay_cell, rule, Cli};
use ctlm_core::pipeline::{run_model_over_steps, ModelKind};
use ctlm_core::TrainConfig;
use ctlm_trace::CellSet;

fn main() {
    let cli = Cli::parse();
    println!("TABLE XI. MODEL EVALUATION RESULTS FOR CLUSTERDATA-2019C\n");
    let out = replay_cell(&cli, CellSet::C2019c);
    let cfg = TrainConfig::default();
    let growing = run_model_over_steps(ModelKind::Growing, &out.steps, cfg, cli.seed);
    let retrain = run_model_over_steps(ModelKind::FullyRetrain, &out.steps, cfg, cli.seed);

    println!(
        "{:<5} {:<9} {:>8} {:>5} {:>6} | {:>9} {:>9} {:>6} | {:>9} {:>9} {:>6}",
        "step",
        "time",
        "features",
        "new",
        "rows",
        "G acc",
        "G G0-F1",
        "G ep",
        "FR acc",
        "FR G0-F1",
        "FR ep"
    );
    println!("{:<43} | {:^26} | {:^26}", "", "Growing", "Fully Retrain");
    rule(100);
    for (g, f) in growing.steps.iter().zip(retrain.steps.iter()) {
        println!(
            "{:<5} {:<9} {:>8} {:>5} {:>6} | {:>9.5} {:>9} {:>6} | {:>9.5} {:>9} {:>6}",
            g.step,
            g.label,
            g.features,
            g.new_features,
            g.rows,
            g.evaluation.accuracy,
            opt_f1(g.evaluation.group0_f1),
            g.epochs,
            f.evaluation.accuracy,
            opt_f1(f.evaluation.group0_f1),
            f.epochs,
        );
    }
    rule(100);
    println!(
        "totals: Growing {} epochs / {:.2?} — Fully Retrain {} epochs / {:.2?}",
        growing.epochs_total,
        growing.wall_time_total,
        retrain.epochs_total,
        retrain.wall_time_total
    );
    let saved = 100.0 * (1.0 - growing.epochs_total as f64 / retrain.epochs_total.max(1) as f64);
    println!("epoch reduction: {saved:.0}% (paper reports 40–91% across cells)");
}
