//! Fig. 3 — enhanced cluster job scheduling with the Task CO Analyzer.
//!
//! End-to-end: replay a trace, train the Growing model on its dataset
//! steps, build a [`TaskCoAnalyzer`], then push identical task arrivals
//! through (a) a conventional FIFO/best-fit scheduler and (b) the
//! enhanced pipeline where the analyzer routes predicted-Group-0 tasks to
//! the High-Priority Scheduler. Reports scheduling latency per group —
//! the "minimizes task scheduling latency by prioritizing tasks with
//! fewer suitable nodes" claim.

use std::sync::Arc;

use ctlm_bench::{replay_cell, rule, Cli};
use ctlm_core::{GrowingModel, TaskCoAnalyzer, TrainConfig};
use ctlm_sched::engine::{arrivals_from_trace, compress_timeline, SimConfig, Simulator};
use ctlm_sched::latency::LatencyStats;
use ctlm_sched::scheduler::{Enhanced, MainOnly, OracleEnhanced};
use ctlm_trace::{CellSet, TraceGenerator};

fn show(name: &str, stats: Option<LatencyStats>) {
    match stats {
        Some(s) => println!(
            "{:<34} {:>7} {:>12.1} {:>10} {:>10} {:>10}",
            name,
            s.count,
            s.mean / 1000.0,
            s.p50 / 1000,
            s.p95 / 1000,
            s.p99 / 1000
        ),
        None => println!("{name:<34} (no samples)"),
    }
}

fn main() {
    let cli = Cli::parse();
    println!("FIG. 3 EXPERIMENT: ENHANCED CLUSTER JOB SCHEDULING WITH THE TASK CO ANALYZER\n");
    let cell = CellSet::C2019c;
    let out = replay_cell(&cli, cell);

    // Train the CTLM model over the trace's dataset steps.
    let mut model = GrowingModel::new(TrainConfig::default());
    for (i, step) in out.steps.iter().enumerate() {
        model.step(&step.vv, cli.seed.wrapping_add(i as u64));
    }
    let analyzer = TaskCoAnalyzer::new(model.to_net(), out.vocab.clone());
    println!(
        "analyzer trained: {} features, priority threshold = group {}\n",
        analyzer.features(),
        analyzer.priority_threshold
    );

    // Identical arrivals, three policies. The 31-day trace is compressed
    // onto a 20-minute window so the main queue actually backs up — the
    // loaded regime where head-of-line blocking hurts restrictive tasks.
    let trace = TraceGenerator::generate_cell(cell, cli.trace_scale(cell));
    let (cluster, mut arrivals) = arrivals_from_trace(&trace, 6_000);
    compress_timeline(&mut arrivals, 20 * 60 * 1_000_000);
    let sim = Simulator::new(SimConfig {
        cycle: 1_000_000,
        attempts_per_cycle: 4,
        mean_runtime: 60_000_000,
        horizon: 3_600_000_000,
        seed: cli.seed,
    });
    // One cluster, three policy runs — `run` hands the cluster back
    // reset, so no per-policy deep copy happens.
    let mut cluster = cluster;
    let base = sim.run(&mut cluster, &arrivals, &mut MainOnly);
    let enhanced = sim.run(
        &mut cluster,
        &arrivals,
        &mut Enhanced::new(Arc::new(analyzer)),
    );
    let oracle = sim.run(&mut cluster, &arrivals, &mut OracleEnhanced);

    println!(
        "{:<34} {:>7} {:>12} {:>10} {:>10} {:>10}",
        "policy / population", "n", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"
    );
    rule(88);
    show("main-only: Group 0 tasks", base.group0_latency());
    show("enhanced (CTLM): Group 0 tasks", enhanced.group0_latency());
    show("enhanced (oracle): Group 0 tasks", oracle.group0_latency());
    rule(88);
    show("main-only: other tasks", base.other_latency());
    show("enhanced (CTLM): other tasks", enhanced.other_latency());
    show("enhanced (oracle): other tasks", oracle.other_latency());
    rule(88);
    println!(
        "preemptions: base {}, enhanced {}, oracle {} — unplaced: {}/{}/{} of {}",
        base.preemptions,
        enhanced.preemptions,
        oracle.preemptions,
        base.unplaced,
        enhanced.unplaced,
        oracle.unplaced,
        arrivals.len()
    );
    println!("\nshape target: enhanced Group-0 latency well below main-only, other tasks close to unchanged.");
}
