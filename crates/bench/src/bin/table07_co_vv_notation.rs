//! Table VII — the reversed 0/1 CO-VV notation.
//!
//! Regenerates the exact table: attribute `AM` with observed values 0–9,
//! four sample constraint sets, `1` marking unacceptable values.

use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_data::vocab::ValueVocab;
use ctlm_trace::{AttrValue, ConstraintOp as Op, TaskConstraint};

fn main() {
    println!("TABLE VII. THE REVERSED '0/1' NOTATION OF CO AND MATCHED ATTRIBUTE VALUES\n");
    let mut vocab = ValueVocab::new();
    for v in 0..10 {
        vocab.observe(0, &AttrValue::Int(v));
    }
    let header: Vec<String> = std::iter::once("(none)".to_string())
        .chain((0..10).map(|v| format!("AM:{v}")))
        .collect();
    println!("{:<22} {}", "CO", header.join(" "));

    let rows: Vec<(&str, Vec<TaskConstraint>)> = vec![
        (
            "${AM} >= 5",
            vec![TaskConstraint::new(0, Op::GreaterThanEqual(5))],
        ),
        (
            "3 > ${AM} > 0",
            vec![
                TaskConstraint::new(0, Op::LessThan(3)),
                TaskConstraint::new(0, Op::GreaterThan(0)),
            ],
        ),
        (
            "${AM} <> 0; 7; 8",
            vec![
                TaskConstraint::new(0, Op::NotEqual(AttrValue::Int(0))),
                TaskConstraint::new(0, Op::NotEqual(AttrValue::Int(7))),
                TaskConstraint::new(0, Op::NotEqual(AttrValue::Int(8))),
            ],
        ),
        (
            "${AM} > 0",
            vec![TaskConstraint::new(0, Op::GreaterThan(0))],
        ),
    ];

    for (label, cs) in rows {
        let entries = CoVvEncoder
            .encode(&cs, &vocab)
            .expect("no contradictions here");
        let mut dense = vec![0u8; vocab.len()];
        for (c, v) in entries {
            dense[c] = v as u8;
        }
        let cells: Vec<String> = dense
            .iter()
            .zip(header.iter())
            .map(|(v, h)| format!("{v:>width$}", width = h.len()))
            .collect();
        println!("{label:<22} {}", cells.join(" "));
    }
}
