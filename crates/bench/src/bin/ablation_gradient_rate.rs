//! Ablation — the pre-trained gradient rate (Listing 3's 0.1).
//!
//! The paper: “a scaling factor above 20–30 % negated training effects,
//! while zeroing gradients for pre-trained weights reduced model
//! accuracy.” This sweep retrains the Growing model across the same
//! dataset steps under different `pretrained_gradient_rate` values and
//! reports accuracy and epoch totals.

use ctlm_bench::{opt_f1, replay_cell, rule, Cli};
use ctlm_core::pipeline::{run_model_over_steps, ModelKind};
use ctlm_core::TrainConfig;
use ctlm_trace::CellSet;

fn main() {
    let cli = Cli::parse();
    println!("ABLATION: PRETRAINED_GRADIENT_RATE SWEEP (paper value: 0.1)\n");
    let out = replay_cell(&cli, CellSet::C2019c);
    println!(
        "{:>6} {:>10} {:>11} {:>8} {:>9}",
        "rate", "avg acc", "avg G0 F1", "epochs", "accepted"
    );
    rule(50);
    for rate in [0.0f32, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0] {
        let cfg = TrainConfig {
            pretrained_gradient_rate: rate,
            ..TrainConfig::default()
        };
        let run = run_model_over_steps(ModelKind::Growing, &out.steps, cfg, cli.seed);
        let accepted = run
            .steps
            .iter()
            .filter(|s| s.evaluation.accuracy > cfg.accepted_accuracy)
            .count();
        println!(
            "{:>6.2} {:>10.5} {:>11} {:>8} {:>6}/{}",
            rate,
            run.avg_accuracy,
            opt_f1(run.avg_group0_f1),
            run.epochs_total,
            accepted,
            run.steps.len()
        );
    }
    println!("\nshape target: rate 0 (frozen pre-trained weights) blows up the epoch");
    println!("count and loses Group-0 F1 — the paper's \"zeroing gradients reduced");
    println!("model accuracy\". Rates ≥ 0.05 form a shallow basin around the paper's");
    println!("0.1; the paper's sharper degradation above 0.2–0.3 depends on how far");
    println!("successive steps drift, which is milder in the synthetic traces.");
}
