//! Bench regression gate: compares a freshly produced criterion-shim
//! JSON report against the checked-in baseline and fails (exit 1) when a
//! key median regressed beyond the tolerance.
//!
//! ```text
//! CTLM_BENCH_JSON=bench_ci.json cargo bench -p ctlm-bench --bench matching ...
//! cargo run -p ctlm-bench --bin bench_check -- bench_ci.json BENCH_PR4.json
//! ```
//!
//! Only the gated groups are compared (`matching/`, `training_step/`,
//! `placement/`, `autoscale/` by default — override with
//! `--groups a,b,c`); entries
//! present in just one report are skipped, since CI may run a subset.
//! The default threshold (current ≤ 1.25 × baseline) is deliberately
//! tolerant of shared-runner noise; tighten locally with
//! `--threshold 1.1`.
//!
//! Every compared entry prints its measured/baseline ratio, pass or
//! fail. A baseline entry annotated `"host_sensitive": true` downgrades
//! a regression to a warning (printed, but exit stays 0) — for benches
//! whose medians swing with cache topology or core count. When both
//! reports carry a `_meta.host` fingerprint (the criterion shim records
//! one) and the hosts differ, a warning notes that ratios are
//! indicative only.

use ctlm_bench::args::ParsedArgs;
use ctlm_telemetry::HostFingerprint;
use serde::Deserialize;
use serde_json::Value;

const DEFAULT_GROUPS: &[&str] = &[
    "matching/",
    "training_step/",
    "placement/",
    "autoscale/",
    "multicell/",
    "arrivals/",
    "faults/",
];

fn medians(doc: &Value) -> Vec<(String, f64)> {
    let Value::Object(pairs) = doc else {
        return Vec::new();
    };
    pairs
        .iter()
        .filter_map(|(k, v)| v.get_field("median_ns").as_f64().map(|m| (k.clone(), m)))
        .collect()
}

/// The report's recorded host fingerprint, when present (`_meta.host`).
/// Older baselines predate the field; `None` skips the comparison.
fn host_of(doc: &Value) -> Option<HostFingerprint> {
    HostFingerprint::from_value(doc.get_field("_meta").get_field("host")).ok()
}

/// Whether the baseline marks `id` as host-sensitive: regressions on such
/// entries warn instead of failing the gate.
fn host_sensitive(doc: &Value, id: &str) -> bool {
    matches!(
        doc.get_field(id).get_field("host_sensitive"),
        Value::Bool(true)
    )
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(argv, &[], &["--threshold", "--groups"]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bench_check: {e}");
            eprintln!("usage: bench_check <current.json> <baseline.json> [--threshold 1.25] [--groups matching/,placement/]");
            std::process::exit(2);
        }
    };
    let positionals = parsed.positionals();
    let [current_path, baseline_path] = positionals else {
        eprintln!("usage: bench_check <current.json> <baseline.json> [--threshold 1.25]");
        std::process::exit(2);
    };
    let threshold: f64 = parsed
        .option("--threshold")
        .map(|s| s.parse().expect("--threshold must be a number"))
        .unwrap_or(1.25);
    let groups_arg = parsed.option("--groups").map(str::to_string);
    let groups: Vec<&str> = match &groups_arg {
        Some(s) => s.split(',').filter(|g| !g.is_empty()).collect(),
        None => DEFAULT_GROUPS.to_vec(),
    };

    let current_doc = load(current_path);
    let baseline_doc = load(baseline_path);
    if let (Some(ch), Some(bh)) = (host_of(&current_doc), host_of(&baseline_doc)) {
        if !ch.same_host(&bh) {
            eprintln!(
                "bench_check: WARNING: hosts differ — current on {}, baseline on {}; \
                 ratios are indicative only",
                ch.label(),
                bh.label()
            );
        }
    }
    let current = medians(&current_doc);
    let baseline = medians(&baseline_doc);
    let mut compared = 0usize;
    let mut regressions = Vec::new();
    let mut warned = 0usize;
    for (id, cur) in &current {
        if !groups.iter().any(|g| id.starts_with(g)) {
            continue;
        }
        let Some((_, base)) = baseline.iter().find(|(k, _)| k == id) else {
            continue;
        };
        compared += 1;
        let ratio = cur / base;
        let regressed = ratio > threshold;
        let sensitive = host_sensitive(&baseline_doc, id);
        let verdict = match (regressed, sensitive) {
            (true, true) => "WARN (host-sensitive)",
            (true, false) => "REGRESSED",
            (false, _) => "ok",
        };
        println!(
            "{id:<45} current {cur:>14.0} ns  baseline {base:>14.0} ns  ratio {ratio:>5.2}  {verdict}"
        );
        if regressed {
            if sensitive {
                warned += 1;
            } else {
                regressions.push((id.clone(), ratio));
            }
        }
    }
    if compared == 0 {
        eprintln!(
            "bench_check: no overlapping entries for groups {groups:?} — \
             did the bench run write {current_path}?"
        );
        std::process::exit(2);
    }
    if warned > 0 {
        println!(
            "bench_check: {warned} host-sensitive entr{} exceeded {threshold}× (warning only)",
            if warned == 1 { "y" } else { "ies" }
        );
    }
    if regressions.is_empty() {
        println!("bench_check: {compared} medians within {threshold}× of baseline");
    } else {
        eprintln!(
            "bench_check: {} of {compared} medians regressed beyond {threshold}×:",
            regressions.len()
        );
        for (id, ratio) in &regressions {
            eprintln!("  {id}: {ratio:.2}× baseline");
        }
        std::process::exit(1);
    }
}
