//! Table VIII — sample of the CO-VV dataset (clusterdata-2019a).
//!
//! Replays a 2019a-like trace and prints sample rows of the value-vector
//! dataset with its sparsity statistics.

use ctlm_bench::{replay_cell, Cli};
use ctlm_trace::CellSet;

fn main() {
    let cli = Cli::parse();
    println!("TABLE VIII. SAMPLE OF THE CO-VV DATASET (CLUSTERDATA-2019A)\n");
    let out = replay_cell(&cli, CellSet::C2019a);
    let step = out.steps.last().expect("replay produced steps");
    let vv = &step.vv;

    println!(
        "dataset: {} rows × {} feature columns, {} non-zeros (density {:.4}%)\n",
        vv.len(),
        vv.features_count(),
        vv.x.nnz(),
        100.0 * vv.x.density()
    );

    // Sparse row listing: column indices marked 1 per row.
    println!("row   group  marked columns (value unacceptable)");
    for r in 0..vv.len().min(12) {
        let marked: Vec<String> = vv.x.row_entries(r).map(|(c, _)| c.to_string()).collect();
        let shown = if marked.len() > 14 {
            format!("{} … ({} total)", marked[..14].join(","), marked.len())
        } else {
            marked.join(",")
        };
        println!("{r:<5} {:<6} {shown}", vv.y[r]);
    }
    println!("\nper-class rows: {:?}", vv.class_counts());
}
