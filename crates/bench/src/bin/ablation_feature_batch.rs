//! Ablation — feature-batch size per extension step.
//!
//! The paper (§VI): “Adding new features to the ANN should be done
//! gradually. Experimentation showed that adding over 40–50 features at
//! once often reduces accuracy and forces full model retraining.”
//!
//! Controlled setup: a CO-VV-like synthetic problem whose label signal is
//! spread across the full feature range. Step A trains on a truncated
//! feature array; step B widens it by `batch` columns whose signal must
//! be learned through the transfer path. Larger batches mean more signal
//! concentrated in fresh zero-initialised columns.

use ctlm_bench::{rule, Cli};
use ctlm_core::{GrowingModel, TrainConfig};
use ctlm_data::dataset::{Dataset, DatasetBuilder, NUM_GROUPS};
use rand::Rng;

/// Builds the synthetic problem at a given visible width: labels depend
/// on how many of the first `full_width` columns are marked, but only the
/// first `visible` columns are encoded.
fn dataset(n: usize, full_width: usize, visible: usize, seed: u64) -> Dataset {
    let mut rng = ctlm_tensor::init::seeded_rng(seed);
    let mut b = DatasetBuilder::new(visible, NUM_GROUPS);
    for _ in 0..n {
        let group: u8 = if rng.gen_bool(0.03) {
            0
        } else {
            rng.gen_range(1..NUM_GROUPS as u8)
        };
        let marks = 2 + (group as usize * (full_width - 4)) / NUM_GROUPS;
        let entries: Vec<(usize, f32)> = (0..marks)
            .filter(|&c| c < visible)
            .map(|c| (c, 1.0))
            .collect();
        b.push(entries, group);
    }
    b.snapshot(visible)
}

fn main() {
    let cli = Cli::parse();
    println!("ABLATION: FEATURES ADDED PER EXTENSION STEP (paper guidance: stay under 40-50)\n");
    let full = 180usize;
    println!(
        "{:>7} {:>10} {:>10} {:>8} {:>9} {:>13}",
        "batch", "acc A", "acc B", "epochs B", "accepted", "fell back"
    );
    rule(64);
    for batch in [10usize, 25, 40, 60, 100] {
        let visible_a = full - batch;
        let cfg = TrainConfig::default();
        let mut model = GrowingModel::new(cfg);
        let ds_a = dataset(2_000, full, visible_a, cli.seed);
        let out_a = model.step(&ds_a, cli.seed);
        let ds_b = dataset(2_000, full, full, cli.seed + 1);
        let out_b = model.step(&ds_b, cli.seed + 1);
        println!(
            "{:>7} {:>10.5} {:>10.5} {:>8} {:>9} {:>13}",
            batch,
            out_a.evaluation.accuracy,
            out_b.evaluation.accuracy,
            out_b.epochs,
            out_b.accepted,
            !out_b.used_transfer || out_b.attempts > 1,
        );
    }
    println!("\nshape target: small batches keep the transfer cheap; large batches need");
    println!("more epochs or fall back to full retraining (extra attempts).");
}
