//! Table X — summary of model evaluation results.
//!
//! For every cell: the Growing and Fully-Retrain models plus the four
//! scikit-learn-style baselines, reporting average accuracy, average
//! Group-0 F1, total epochs (ANN models) and total wall time.
//!
//! Reproduction targets (shape, not absolute numbers):
//! * all models land in the high-accuracy regime;
//! * Growing ≈ Fully-Retrain in accuracy;
//! * Growing needs far fewer epochs (paper: 40–91 % fewer);
//! * Growing's per-step wall time is an order of magnitude below the
//!   from-scratch models'.

use ctlm_bench::{opt_f1, replay_cell, rule, Cli};
use ctlm_core::pipeline::{
    run_baseline_over_steps, run_model_over_steps, BaselineKind, ModelKind, RunSummary,
};
use ctlm_core::TrainConfig;
use ctlm_trace::CellSet;

fn row(cell: &str, r: &RunSummary, epochs: bool) {
    println!(
        "{:<20} {:<17} {:>9.5} {:>10} {:>8} {:>10.2?}",
        cell,
        r.model,
        r.avg_accuracy,
        opt_f1(r.avg_group0_f1),
        if epochs {
            r.epochs_total.to_string()
        } else {
            "—".into()
        },
        r.wall_time_total,
    );
}

fn main() {
    let cli = Cli::parse();
    println!("TABLE X. SUMMARY OF MODEL EVALUATION RESULTS\n");
    println!(
        "{:<20} {:<17} {:>9} {:>10} {:>8} {:>10}",
        "Dataset", "Model", "Avg acc", "Avg G0 F1", "Epochs", "Wall time"
    );
    rule(80);
    let cfg = TrainConfig::default();
    for cell in CellSet::all() {
        let out = replay_cell(&cli, cell);
        let steps = &out.steps;
        let name = cell.profile().name;
        row(
            name,
            &run_model_over_steps(ModelKind::Growing, steps, cfg, cli.seed),
            true,
        );
        row(
            name,
            &run_model_over_steps(ModelKind::FullyRetrain, steps, cfg, cli.seed),
            true,
        );
        for kind in BaselineKind::all() {
            let epochs = kind == BaselineKind::Mlp || kind == BaselineKind::Ensemble;
            row(
                name,
                &run_baseline_over_steps(kind, steps, 0.25, cli.seed),
                epochs,
            );
        }
        rule(80);
    }
    println!("\npaper highlights: Growing epochs 66/107/76/161 vs Fully-Retrain 746/179/830/261;");
    println!("all accuracies ≥ 0.98 except MLP on the harder 2019 cells.");
}
