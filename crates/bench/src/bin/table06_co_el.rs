//! Table VI — sample of the CO-EL dataset (clusterdata-2011).
//!
//! Replays a 2011-like trace and prints the first rows of the one-hot
//! label-encoded dataset, with the label legend.

use ctlm_bench::{replay_cell, Cli};
use ctlm_trace::CellSet;

fn main() {
    let cli = Cli::parse();
    println!("TABLE VI. SAMPLE OF THE CO-EL DATASET (CLUSTERDATA-2011)\n");
    let out = replay_cell(&cli, CellSet::C2011);
    let step = out.steps.last().expect("replay produced steps");
    let el = step.el.as_ref().expect("CO-EL enabled by default");

    println!(
        "dataset: {} rows × {} label columns ({} CO-VV columns for comparison)\n",
        el.len(),
        el.features_count(),
        step.features_count
    );

    // Print up to 12 rows × first 10 columns plus the group label.
    let cols = el.features_count().min(10);
    let header: Vec<String> = (0..cols).map(|c| format!("L{c:02}")).collect();
    println!("row   {}  group", header.join(" "));
    for r in 0..el.len().min(12) {
        let cells: Vec<String> = (0..cols)
            .map(|c| format!("{:>3}", el.x.get(r, c) as u8))
            .collect();
        println!("{r:<5} {}  {}", cells.join(" "), el.y[r]);
    }
    println!("\n(ones mark which collapsed-CO labels a task carries; the label");
    println!(" space grows with every previously unseen CO, which is why the");
    println!(" paper abandons CO-EL for CO-VV)");
}
