//! Table V — sample CO compactions.
//!
//! Regenerates the paper's compaction examples verbatim: the Between
//! operator, integer-bound tightening, the Non-Equal-Array fold, Equal
//! dominance, and the logged contradiction.

use ctlm_data::compaction::collapse;
use ctlm_trace::{AttrValue, ConstraintOp as Op, TaskConstraint};

fn show(title: &str, constraints: &[TaskConstraint]) {
    println!("Input CO:");
    for c in constraints {
        println!("    {c}");
    }
    match collapse(constraints) {
        Ok(reqs) => {
            println!("Collapsed CO:");
            for r in &reqs {
                println!("    {r}");
            }
        }
        Err(e) => println!("Collapsed CO:\n    ERROR LOGGED: {e}"),
    }
    println!("    ({title})\n");
}

fn main() {
    println!("TABLE V. SAMPLE CO COMPACTIONS\n");
    let am = 0u32;
    show(
        "operators are compacted into a new Between operator; the looser bound is obsolete",
        &[
            TaskConstraint::new(am, Op::LessThan(8)),
            TaskConstraint::new(am, Op::LessThan(3)),
            TaskConstraint::new(am, Op::GreaterThan(0)),
        ],
    );
    show(
        "GCD traces support only integers, so <>4 with >3 tightens to >4",
        &[
            TaskConstraint::new(am, Op::NotEqual(AttrValue::Int(1))),
            TaskConstraint::new(am, Op::GreaterThan(3)),
            TaskConstraint::new(am, Op::NotEqual(AttrValue::Int(4))),
        ],
    );
    show(
        "operators are compacted into a new Non-Equal-Array operator",
        &[
            TaskConstraint::new(1, Op::NotEqual(AttrValue::from("a"))),
            TaskConstraint::new(1, Op::NotEqual(AttrValue::from("b"))),
            TaskConstraint::new(1, Op::NotEqual(AttrValue::from("c"))),
        ],
    );
    show(
        "Not-Equal operators are removed as the Equal operator is restrictive",
        &[
            TaskConstraint::new(2, Op::NotEqual(AttrValue::from("a"))),
            TaskConstraint::new(2, Op::NotEqual(AttrValue::from("b"))),
            TaskConstraint::new(2, Op::Equal(Some(AttrValue::from("c")))),
        ],
    );
    show(
        "whenever collapsing COs is not possible, an error is logged",
        &[
            TaskConstraint::new(3, Op::Equal(Some(AttrValue::Int(1)))),
            TaskConstraint::new(3, Op::Equal(Some(AttrValue::Int(7)))),
        ],
    );
}
