//! Table IX — distribution of tasks with CO by volume, requested CPU and
//! memory, per GCD archive.
//!
//! Replays all four cells and prints the min/max/avg ratios over daily
//! windows, the same aggregation the paper reports.

use ctlm_bench::{pct, replay_cell, rule, Cli};
use ctlm_trace::CellSet;

fn main() {
    let cli = Cli::parse();
    println!("TABLE IX. DISTRIBUTION OF TASKS WITH CO BY VOLUME, REQUESTED CPU AND MEMORY\n");
    println!(
        "{:<20} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "GCD archive", "Min", "Max", "Avg", "Min", "Max", "Avg", "Min", "Max", "Avg"
    );
    println!(
        "{:<20} | {:^20} | {:^20} | {:^20}",
        "", "by volume", "by requested CPU", "by requested memory"
    );
    rule(92);
    for cell in CellSet::all() {
        let out = replay_cell(&cli, cell);
        let d = out.stats;
        println!(
            "{:<20} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
            cell.profile().name,
            pct(d.by_volume.min),
            pct(d.by_volume.max),
            pct(d.by_volume.avg),
            pct(d.by_cpu.min),
            pct(d.by_cpu.max),
            pct(d.by_cpu.avg),
            pct(d.by_memory.min),
            pct(d.by_memory.max),
            pct(d.by_memory.avg),
        );
    }
    println!("\npaper row for comparison (clusterdata-2019a): 16.6% 62.6% 41.8% | 17.4% 64.8% 38.3% | 19.9% 74.7% 48.5%");
}
