//! The one hand-rolled argument parser for the workspace's binaries.
//!
//! Every table/figure binary used to open-code its `std::env::args` loop;
//! this module centralizes the convention they share — boolean flags
//! (`--medium`), valued options (`--seed 42`) and positional arguments
//! (a spec path) — so the binaries and the `ctlm-lab` runner declare
//! their vocabulary instead of re-implementing the scan.

use std::collections::{BTreeMap, BTreeSet};

/// Parsed command line: which flags were set, option values, and the
/// remaining positional arguments in order.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    flags: BTreeSet<String>,
    options: BTreeMap<String, String>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// Parses `argv` (without the program name) against the declared
    /// vocabulary: `flags` take no value, `options` consume the next
    /// argument. Anything starting with `--` outside the vocabulary is an
    /// error; everything else is positional.
    pub fn parse(
        argv: impl IntoIterator<Item = String>,
        flags: &[&str],
        options: &[&str],
    ) -> Result<Self, String> {
        let mut out = Self::default();
        let mut iter = argv.into_iter();
        while let Some(arg) = iter.next() {
            if flags.contains(&arg.as_str()) {
                out.flags.insert(arg);
            } else if options.contains(&arg.as_str()) {
                let value = iter.next().ok_or_else(|| format!("{arg} needs a value"))?;
                out.options.insert(arg, value);
            } else if arg.starts_with("--") {
                return Err(format!(
                    "unknown argument {arg:?} (expected one of {})",
                    flags
                        .iter()
                        .chain(options)
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// [`ParsedArgs::parse`] over the process arguments, panicking with
    /// the error message on a bad command line (the binaries' behavior).
    pub fn from_env(flags: &[&str], options: &[&str]) -> Self {
        Self::parse(std::env::args().skip(1), flags, options).unwrap_or_else(|e| panic!("{e}"))
    }

    /// True when the flag was present.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The raw value of an option, if present.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// An option parsed into `T`, or `default` when absent.
    ///
    /// # Panics
    /// Panics when the value does not parse — a bad command line, not a
    /// recoverable state for the binaries.
    pub fn option_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.option(name) {
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| panic!("{name} got unparsable value {raw:?}")),
            None => default,
        }
    }

    /// Positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_options_positionals() {
        let a = ParsedArgs::parse(
            argv(&["--medium", "--seed", "7", "spec.json"]),
            &["--medium", "--full"],
            &["--seed"],
        )
        .unwrap();
        assert!(a.flag("--medium"));
        assert!(!a.flag("--full"));
        assert_eq!(a.option_or("--seed", 0u64), 7);
        assert_eq!(a.positionals(), ["spec.json"]);
    }

    #[test]
    fn unknown_and_missing_value_error() {
        assert!(ParsedArgs::parse(argv(&["--bogus"]), &[], &[]).is_err());
        assert!(ParsedArgs::parse(argv(&["--seed"]), &[], &["--seed"]).is_err());
    }

    #[test]
    fn absent_option_falls_back() {
        let a = ParsedArgs::parse(argv(&[]), &[], &["--seed"]).unwrap();
        assert_eq!(a.option_or("--seed", 42u64), 42);
        assert_eq!(a.option("--seed"), None);
    }
}
