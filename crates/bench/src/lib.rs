//! # ctlm-bench — the table/figure regeneration harness
//!
//! One binary per table and figure of the paper's evaluation section
//! (`src/bin/table*.rs`, `src/bin/fig3*.rs`, `src/bin/ablation*.rs`) and
//! Criterion micro-benches (`benches/`) for the §V timing claims.
//!
//! Every binary accepts:
//!
//! * `--medium` / `--full` — scale up from the default CI-friendly size
//!   (full approaches paper scale and is slow);
//! * `--seed N` — change the master seed.
//!
//! Absolute numbers differ from the paper (different hardware, synthetic
//! traces); the *shape* — who wins, by what factor, where the crossovers
//! are — is the reproduction target. See `EXPERIMENTS.md`.

use ctlm_agocs::replay::{ReplayOutput, Replayer};
use ctlm_trace::{CellSet, Scale, TraceGenerator};

pub mod args;

pub use args::ParsedArgs;

/// Run scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunScale {
    /// Default: a few hundred machines, seconds per experiment.
    Small,
    /// ~1k machines; minutes.
    Medium,
    /// Paper scale; hours.
    Full,
}

/// Parsed common CLI options.
#[derive(Clone, Copy, Debug)]
pub struct Cli {
    /// Selected scale.
    pub scale: RunScale,
    /// Master seed.
    pub seed: u64,
}

impl Cli {
    /// Parses `--medium`, `--full` and `--seed N` from `std::env::args`
    /// via the shared [`args::ParsedArgs`] helper.
    pub fn parse() -> Self {
        let parsed = ParsedArgs::from_env(&["--medium", "--full"], &["--seed"]);
        assert!(
            parsed.positionals().is_empty(),
            "unexpected positional arguments {:?}",
            parsed.positionals()
        );
        let scale = if parsed.flag("--full") {
            RunScale::Full
        } else if parsed.flag("--medium") {
            RunScale::Medium
        } else {
            RunScale::Small
        };
        Self {
            scale,
            seed: parsed.option_or("--seed", 42),
        }
    }

    /// The trace scale for a cell profile under this CLI selection.
    pub fn trace_scale(&self, cell: CellSet) -> Scale {
        let profile = cell.profile();
        match self.scale {
            RunScale::Small => Scale {
                machines: 260,
                collections: 1_600,
                seed: self.seed,
            },
            RunScale::Medium => Scale {
                machines: 1_000,
                collections: 8_000,
                seed: self.seed,
            },
            RunScale::Full => Scale::full(&profile, self.seed),
        }
    }
}

/// Generates and replays one cell at the CLI scale.
pub fn replay_cell(cli: &Cli, cell: CellSet) -> ReplayOutput {
    let trace = TraceGenerator::generate_cell(cell, cli.trace_scale(cell));
    Replayer::default().replay(&trace)
}

/// Formats a fraction as the paper's percent style (`41.8%`).
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Formats an optional F1 like the paper's tables (blank when omitted).
pub fn opt_f1(v: Option<f64>) -> String {
    match v {
        Some(f) => format!("{f:.5}"),
        None => "—".to_string(),
    }
}

/// Prints a separator line sized to a header.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.418), "41.8%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn opt_f1_formats() {
        assert_eq!(opt_f1(Some(0.99919)), "0.99919");
        assert_eq!(opt_f1(None), "—");
    }

    #[test]
    fn scales_grow_monotonically() {
        let small = Cli {
            scale: RunScale::Small,
            seed: 1,
        };
        let medium = Cli {
            scale: RunScale::Medium,
            seed: 1,
        };
        let full = Cli {
            scale: RunScale::Full,
            seed: 1,
        };
        let c = CellSet::C2019c;
        assert!(small.trace_scale(c).machines < medium.trace_scale(c).machines);
        assert!(medium.trace_scale(c).machines < full.trace_scale(c).machines);
        assert_eq!(full.trace_scale(c).machines, 12_600);
    }
}
