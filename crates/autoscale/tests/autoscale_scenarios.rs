//! Kernel-level autoscaler scenarios: burst absorption, warm-pool
//! activation, the churn/autoscaler ownership guard (including the
//! drain-while-provisioning regression), determinism, and the
//! never-strand-a-task property.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use ctlm_autoscale::{
    AutoscaleConfig, AutoscalePolicy, AutoscaleStats, Autoscaler, MachineTemplate, Predictive,
    ProvisionDelay, TargetTracking, ThresholdStep,
};
use ctlm_sched::engine::{SimConfig, Simulator, PRIO_STATE};
use ctlm_sched::scenario::{ChurnAction, ChurnPlan, ChurnSource};
use ctlm_sched::{OwnershipGuard, PendingTask, SchedCluster, SchedEvent, SimResult};
use ctlm_trace::{Machine, Micros};

fn fleet(n: usize) -> SchedCluster {
    SchedCluster::from_machines((0..n as u64).map(|i| Machine::new(i, 1.0, 1.0)))
}

fn burst_arrivals(count: usize, start: Micros, gap: Micros, cpu: f64) -> Vec<PendingTask> {
    (0..count)
        .map(|k| PendingTask {
            id: k as u64,
            collection: 1,
            cpu,
            memory: cpu,
            priority: 2,
            reqs: vec![],
            arrival: start + k as Micros * gap,
            truth_group: 25,
        })
        .collect()
}

fn sim_config(horizon: Micros, seed: u64) -> SimConfig {
    SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 16,
        mean_runtime: 10_000_000,
        horizon,
        seed,
    }
}

/// Runs `arrivals` against an `initial`-machine fleet with the given
/// autoscaler, returning `(cluster, result, stats)`.
fn run_autoscaled(
    initial: usize,
    arrivals: &[PendingTask],
    config: SimConfig,
    cfg: AutoscaleConfig,
    policy: Box<dyn AutoscalePolicy>,
    churn: Option<ChurnPlan>,
) -> (SchedCluster, SimResult, AutoscaleStats) {
    let simulator = Simulator::new(config);
    let mut scheduler = ctlm_sched::scheduler::MainOnly;
    let mut harness = simulator.harness(fleet(initial), arrivals, &mut scheduler);
    let guard = OwnershipGuard::new();
    if let Some(plan) = churn {
        let source = ChurnSource::new(plan, harness.engine).with_guard(guard.clone());
        let first = source.first_time();
        let id = harness.sim.add_component("churn", source);
        if let Some(t) = first {
            harness
                .sim
                .schedule_prio(t, PRIO_STATE, id, id, SchedEvent::Wake);
        }
    }
    let (scaler, stats) = Autoscaler::new(cfg, policy, harness.state(), guard);
    let id = harness.sim.add_component("autoscaler", scaler);
    harness
        .sim
        .schedule_prio(0, PRIO_STATE, id, id, SchedEvent::Wake);
    let (cluster, result) = harness.run();
    let stats = Rc::try_unwrap(stats)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| rc.borrow().clone());
    (cluster, result, stats)
}

fn threshold_cfg(min: usize, max: usize, sim: &SimConfig) -> AutoscaleConfig {
    AutoscaleConfig {
        warm_pool: 2,
        delay: ProvisionDelay::Fixed(3_000_000),
        template: MachineTemplate {
            cpu: 1.0,
            memory: 1.0,
        },
        ..AutoscaleConfig::new(min, max, 2_000_000, sim)
    }
}

#[test]
fn burst_grows_the_fleet_then_drain_shrinks_it() {
    // 4 machines face a burst worth ~35 concurrent CPUs: the fleet must
    // grow toward max during the burst and shed back after it drains.
    let config = sim_config(240_000_000, 5);
    let arrivals = burst_arrivals(300, 20_000_000, 66_000, 0.25);
    let policy = ThresholdStep {
        up_pending: 5,
        down_util: 0.25,
        step: 4,
        ..ThresholdStep::default()
    };
    let (cluster, result, stats) = run_autoscaled(
        4,
        &arrivals,
        config,
        threshold_cfg(2, 20, &config),
        Box::new(policy),
        None,
    );
    assert!(
        result.placed.len() + result.unplaced == arrivals.len(),
        "every task accounted: {} placed + {} unplaced vs {}",
        result.placed.len(),
        result.unplaced,
        arrivals.len()
    );
    let peak = stats.peak_active();
    assert!(peak > 4, "burst must grow the fleet (peak {peak})");
    assert!(
        stats.final_active() < peak,
        "post-burst drain must shrink from peak {peak} (final {})",
        stats.final_active()
    );
    assert!(stats.scale_ups > 0 && stats.scale_downs > 0);
    assert!(stats.drained > 0, "scale-down goes through drain");
    assert!(
        stats.warm_activations > 0,
        "a stocked warm pool serves part of the burst instantly"
    );
    assert_eq!(cluster.len(), stats.final_active());
    // The fleet floor held at every recorded point.
    assert!(stats.timeline.iter().all(|s| s.active >= 2));
}

#[test]
fn target_tracking_and_predictive_also_absorb_the_burst() {
    let config = sim_config(240_000_000, 9);
    let arrivals = burst_arrivals(300, 20_000_000, 66_000, 0.25);
    for policy in [
        Box::new(TargetTracking {
            target_util: 0.6,
            tolerance: 0.1,
        }) as Box<dyn AutoscalePolicy>,
        Box::new(Predictive::new(5, 1.2, 0.25, config.mean_runtime, 1.0)),
    ] {
        let name = policy.name();
        let (_, result, stats) = run_autoscaled(
            4,
            &arrivals,
            config,
            threshold_cfg(2, 24, &config),
            policy,
            None,
        );
        assert_eq!(result.placed.len() + result.unplaced, arrivals.len());
        assert!(
            stats.peak_active() > 4,
            "{name}: burst must grow the fleet (peak {})",
            stats.peak_active()
        );
        assert!(
            stats.final_active() < stats.peak_active(),
            "{name}: fleet must shrink after the burst"
        );
    }
}

#[test]
fn identical_runs_are_bit_identical() {
    let config = sim_config(180_000_000, 77);
    let arrivals = burst_arrivals(220, 10_000_000, 80_000, 0.3);
    let mut cfg = threshold_cfg(2, 16, &config);
    cfg.delay = ProvisionDelay::Exponential { mean: 4_000_000 };
    let run = || {
        run_autoscaled(
            3,
            &arrivals,
            config,
            cfg.clone(),
            Box::new(ThresholdStep::default()),
            None,
        )
    };
    let (_, ra, sa) = run();
    let (_, rb, sb) = run();
    assert_eq!(ra, rb, "sim results must be bit-identical");
    assert_eq!(sa, sb, "fleet timelines must be bit-identical");
}

/// The drain-while-provisioning regression: churn names a machine that
/// is still provisioning. The ownership guard makes churn skip the
/// outage (and its paired restore) instead of racing the autoscaler —
/// the machine comes online on schedule and nothing is resurrected.
#[test]
fn churn_cannot_drain_a_machine_mid_provisioning() {
    let config = sim_config(60_000_000, 3);
    // Heavy pressure from t=0 so the very first evaluation (t=2 s)
    // orders machines; 10 s provisioning delay keeps them in the
    // Provisioning state until t=12 s.
    let arrivals = burst_arrivals(200, 0, 50_000, 0.3);
    let mut cfg = AutoscaleConfig::new(2, 6, 2_000_000, &config);
    cfg.delay = ProvisionDelay::Fixed(10_000_000);
    let provisioned_id = cfg.id_base; // first ordered machine
    let plan = ChurnPlan::new(vec![
        (5_000_000, ChurnAction::Fail(provisioned_id)),
        (8_000_000, ChurnAction::Restore(provisioned_id)),
    ]);
    let policy = ThresholdStep {
        up_pending: 4,
        down_util: 0.0, // never shed — isolates the provisioning path
        step: 4,
        ..ThresholdStep::default()
    };
    let (cluster, result, stats) =
        run_autoscaled(2, &arrivals, config, cfg, Box::new(policy), Some(plan));
    assert!(stats.provisioned >= 1, "pressure must order machines");
    assert_eq!(
        result.churn_rescheduled, 0,
        "the churn outage on a provisioning machine must be skipped"
    );
    assert!(
        cluster.len() > 2,
        "provisioned machines still came online (fleet {})",
        cluster.len()
    );
    // The fleet only ever grew: no sample dips below the initial 2.
    assert!(stats.timeline.iter().all(|s| s.active >= 2));
}

/// The reverse race: churn claims a machine in the same instant the
/// autoscaler evaluates a scale-down. The autoscaler must skip the
/// claimed machine (counting the conflict) rather than double-draining.
#[test]
fn autoscaler_skips_churn_claimed_machines() {
    let config = sim_config(30_000_000, 1);
    let plan = ChurnPlan::new(vec![
        (4_000_000, ChurnAction::Fail(0)),
        (20_000_000, ChurnAction::Restore(0)),
    ]);
    let policy = ThresholdStep {
        up_pending: 1000,
        down_util: 0.9, // idle fleet: shed every evaluation
        step: 1,
        ..ThresholdStep::default()
    };
    let cfg = AutoscaleConfig::new(1, 8, 4_000_000, &config);
    let (_, _, stats) = run_autoscaled(3, &[], config, cfg, Box::new(policy), Some(plan));
    assert_eq!(
        stats.conflicts_skipped, 1,
        "the same-instant claim must be detected exactly once"
    );
    assert!(stats.drained >= 1, "the unclaimed sibling still drains");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Scale-down never strands a task: whatever the workload shape and
    /// however aggressive the shedding, every task is either placed or
    /// counted unplaced (drained machines requeue everything before
    /// parking), and the online fleet never drops below `min`.
    #[test]
    fn scale_down_never_strands_tasks(
        initial in 2usize..8,
        min in 1usize..3,
        tasks in 10usize..150,
        gap in 20_000u64..200_000,
        cpu_pct in 10u32..45,
        seed in 0u64..1000,
        down_util in 0u32..95,
    ) {
        let config = sim_config(90_000_000, seed);
        let arrivals = burst_arrivals(tasks, 1_000_000, gap, cpu_pct as f64 / 100.0);
        let policy = ThresholdStep {
            up_pending: 6,
            down_util: down_util as f64 / 100.0,
            step: 2,
            ..ThresholdStep::default()
        };
        let mut cfg = threshold_cfg(min, 12, &config);
        cfg.warm_pool = 1;
        let (cluster, result, stats) =
            run_autoscaled(initial, &arrivals, config, cfg, Box::new(policy), None);
        prop_assert_eq!(
            result.placed.len() + result.unplaced,
            arrivals.len(),
            "placed {} + unplaced {} must cover all {} tasks",
            result.placed.len(),
            result.unplaced,
            arrivals.len()
        );
        for s in &stats.timeline {
            prop_assert!(
                s.active >= min.min(initial),
                "fleet {} dipped below min {} at t={}",
                s.active,
                min,
                s.time
            );
        }
        prop_assert_eq!(cluster.len(), stats.final_active());
        // Drains and decommissions stay consistent: nothing is
        // decommissioned that was never drained or cancelled.
        prop_assert!(stats.decommissioned <= stats.drained);
    }
}
