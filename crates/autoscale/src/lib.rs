//! # ctlm-autoscale — the elastic fleet control plane
//!
//! Every scenario the repro could express before this crate ran against
//! a *fixed* fleet: churn drained and restored existing machines, but
//! capacity never grew. This crate closes that gap with a control-plane
//! component on the `ctlm-sim` kernel that watches a scheduling cell's
//! live signals and drives its fleet size through a machine lifecycle —
//! the regime where the paper's latency bands meet capacity planning.
//!
//! ## Signals
//!
//! On a configurable evaluation cadence the autoscaler samples, from
//! the cell's shared [`EngineState`](ctlm_sched::engine::EngineState):
//!
//! * **queue pressure** — pending main + high-priority tasks, plus
//!   `NoCapacity` placement outcomes since the last tick (the
//!   `can_admit`-failure signal: suitable machines existed, none had
//!   room);
//! * **fleet utilisation** — the cluster's O(1) incremental CPU
//!   utilisation;
//! * **arrival rate** — admissions since the last tick (the predictive
//!   policy's forecasting input);
//! * **admission latency** — mean scheduling latency over recently
//!   placed tasks.
//!
//! ## Policies
//!
//! Sizing is pluggable behind [`AutoscalePolicy`]:
//! [`ThresholdStep`] (alarm-driven step scaling), [`TargetTracking`]
//! (size for a utilisation setpoint) and [`Predictive`] (forecast
//! arrivals from a sliding window and size *ahead* of the burst).
//! Policies are pure sizing functions; the
//! [`Autoscaler`] clamps their answer to the
//! configured `[min, max]` band and drives the lifecycle:
//! provisioning (deterministic [`ProvisionDelay`] sampling) → warm
//! standby / active → draining (running tasks requeue through the
//! engine's churn path — nothing is ever stranded) → decommissioned.
//!
//! ## Determinism and coordination
//!
//! All randomness flows through a seeded RNG, so identical spec + seed
//! produce bit-identical fleet timelines. Fleet mutations go through
//! the shared [`OwnershipGuard`](ctlm_sched::lifecycle::OwnershipGuard),
//! which keeps a churn scenario on the same timeline from failing a
//! machine mid-provision or mid-drain (and the autoscaler from draining
//! a machine churn holds).
//!
//! The declarative harness (`ctlm-lab`) exposes all of this as an
//! `autoscale` block per cell — see `experiments/elastic_burst.json`
//! for a bursty workload absorbed by scale-up and shrunk back by
//! drain-based scale-down.

pub mod delay;
pub mod fleet;
pub mod policy;

pub use delay::ProvisionDelay;
pub use fleet::{AutoscaleConfig, AutoscaleStats, Autoscaler, FleetSample, MachineTemplate};
pub use policy::{AutoscalePolicy, Predictive, Signals, TargetTracking, ThresholdStep};
