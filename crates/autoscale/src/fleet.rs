//! The autoscaler component: a control plane on the `ctlm-sim` kernel
//! that drives one cell's fleet through a machine lifecycle.
//!
//! ```text
//!            order            ready                    drain
//!   (none) ────────▶ Provisioning ────▶ Active ◀──────────────┐
//!                        │                ▲  │                │
//!                        │ ready          │  │ drain          │
//!                        ▼                │  ▼                │
//!                      Warm ──────────────┘ Draining ──▶ Warm │
//!                         activate            │   (pool room) │
//!                                             ▼               │
//!                                       Decommissioned        │
//!                                      (pool full) ───────────┘
//! ```
//!
//! On every evaluation tick the component samples the engine's signals
//! (queue depth, no-capacity placement failures, utilisation, arrival
//! deltas), asks its [`AutoscalePolicy`] for a desired fleet size, and
//! closes the gap: scale-up activates warm-pool machines first (instant)
//! and orders the remainder through a provisioning delay sampled from
//! the configured [`ProvisionDelay`]; scale-down *drains* the emptiest
//! online machines through the engine's churn path — every running task
//! requeues before the machine leaves — then parks them warm or
//! decommissions them. All fleet mutations go through the shared
//! [`OwnershipGuard`], so a churn scenario running on the same timeline
//! can never fail a machine the autoscaler is mid-transition on (or
//! vice versa).
//!
//! Everything is deterministic in the config seed: identical spec +
//! seed produce bit-identical fleets, timelines and reports.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ctlm_sched::engine::EngineState;
use ctlm_sched::lifecycle::{LifecycleOwner, OwnershipGuard};
use ctlm_sched::{SchedEvent, SimConfig};
use ctlm_sim::{Component, Ctx, Event};
use ctlm_telemetry::SpanLog;
use ctlm_trace::{AttrValue, Machine, MachineId, Micros};

use crate::delay::ProvisionDelay;
use crate::policy::{AutoscalePolicy, Signals};

/// Delivery class for fleet mutations — same phase as completions and
/// machine churn (before admissions and the scheduling pass).
pub const PRIO_STATE: u8 = ctlm_sched::engine::PRIO_STATE;

/// Window over recently placed tasks for the admission-latency signal.
const LATENCY_WINDOW: usize = 32;

/// The shape of machines this autoscaler provisions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineTemplate {
    /// CPU capacity per machine.
    pub cpu: f64,
    /// Memory capacity per machine.
    pub memory: f64,
}

impl Default for MachineTemplate {
    fn default() -> Self {
        Self {
            cpu: 1.0,
            memory: 1.0,
        }
    }
}

/// Static configuration for one cell's autoscaler.
#[derive(Clone, Debug)]
pub struct AutoscaleConfig {
    /// Fleet floor — scale-down never drains below this many online
    /// machines.
    pub min: usize,
    /// Fleet ceiling — scale-up never targets more than this.
    pub max: usize,
    /// Evaluation cadence (µs); the first evaluation fires one cadence
    /// in.
    pub cadence: Micros,
    /// Warm-pool target: provisioned machines kept on standby so a
    /// scale-up can activate instantly instead of paying the
    /// provisioning delay.
    pub warm_pool: usize,
    /// Provisioning-delay distribution for freshly ordered machines.
    pub delay: ProvisionDelay,
    /// Shape of provisioned machines.
    pub template: MachineTemplate,
    /// RNG seed (provisioning delays).
    pub seed: u64,
    /// Simulation horizon (µs) — no wake-ups are scheduled past it.
    pub horizon: Micros,
    /// First machine id for provisioned machines (namespaced clear of
    /// the initial fleet).
    pub id_base: MachineId,
    /// When set, provisioned machines get `attr 0 = base + k` (the lab's
    /// synthetic-cell pin-attribute convention, offset past the initial
    /// fleet so no restrictive task ever aliases a provisioned node).
    pub attr_base: Option<i64>,
}

impl AutoscaleConfig {
    /// A config with the given fleet band and cadence; everything else
    /// defaulted (30 s fixed delay, no warm pool, unit-capacity
    /// template, ids from `1 << 48`).
    pub fn new(min: usize, max: usize, cadence: Micros, sim: &SimConfig) -> Self {
        Self {
            min,
            max: max.max(min),
            cadence: cadence.max(1),
            warm_pool: 0,
            delay: ProvisionDelay::default(),
            template: MachineTemplate::default(),
            seed: sim.seed,
            horizon: sim.horizon,
            id_base: 1 << 48,
            attr_base: None,
        }
    }
}

/// One point of the fleet-size timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSample {
    /// Simulation time (µs).
    pub time: Micros,
    /// Online machines.
    pub active: usize,
    /// Warm-standby machines.
    pub warm: usize,
    /// Machines still provisioning.
    pub provisioning: usize,
}

/// What the autoscaler did over a run — embedded per cell in lab
/// reports.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleStats {
    /// Policy registry name.
    pub policy: String,
    /// Fleet-size timeline (consecutive duplicates collapsed).
    pub timeline: Vec<FleetSample>,
    /// Evaluations that asked for a larger fleet.
    pub scale_ups: usize,
    /// Evaluations that asked for a smaller fleet.
    pub scale_downs: usize,
    /// Machines ordered through the provisioning delay.
    pub provisioned: usize,
    /// Scale-ups served instantly from the warm pool.
    pub warm_activations: usize,
    /// Machines drained (tasks requeued) by scale-down.
    pub drained: usize,
    /// Drained machines released for good.
    pub decommissioned: usize,
    /// In-flight provisioning orders cancelled by a reversal.
    pub cancelled: usize,
    /// Lifecycle actions skipped because churn held the machine.
    pub conflicts_skipped: usize,
}

impl AutoscaleStats {
    /// Largest online fleet observed.
    pub fn peak_active(&self) -> usize {
        self.timeline.iter().map(|s| s.active).max().unwrap_or(0)
    }

    /// Smallest online fleet observed.
    pub fn min_active(&self) -> usize {
        self.timeline.iter().map(|s| s.active).min().unwrap_or(0)
    }

    /// Online fleet at the last sample.
    pub fn final_active(&self) -> usize {
        self.timeline.last().map(|s| s.active).unwrap_or(0)
    }

    /// Folds the lifecycle counters and fleet-size extremes into a
    /// telemetry registry under `prefix` (e.g. `"oracle.hot.autoscale"`).
    /// Everything recorded is sim-plane state — a pure function of the
    /// deterministic event sequence — so the export stays byte-identical
    /// across thread counts.
    pub fn record_into(&self, metrics: &mut ctlm_telemetry::Metrics, prefix: &str) {
        let c = |name: &str, v: usize| (format!("{prefix}.{name}"), v as u64);
        for (name, v) in [
            c("scale_ups", self.scale_ups),
            c("scale_downs", self.scale_downs),
            c("provisioned", self.provisioned),
            c("warm_activations", self.warm_activations),
            c("drained", self.drained),
            c("decommissioned", self.decommissioned),
            c("cancelled", self.cancelled),
            c("conflicts_skipped", self.conflicts_skipped),
        ] {
            metrics.counter(&name, v);
        }
        metrics.gauge(format!("{prefix}.peak_active"), self.peak_active() as f64);
        metrics.gauge(format!("{prefix}.final_active"), self.final_active() as f64);
    }
}

/// Where a provisioning machine is headed once ready.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Destination {
    /// Straight into the live fleet.
    Active,
    /// Onto the standby pool.
    Warm,
}

/// An in-flight provisioning order.
#[derive(Debug)]
struct Provision {
    ready_at: Micros,
    machine: Machine,
    dest: Destination,
}

/// The control-plane component. Register it on the cell's simulation
/// and seed one wake-up at time 0 (class [`PRIO_STATE`]); it self-wakes
/// on its cadence and at provisioning completions from there.
pub struct Autoscaler<'a> {
    cfg: AutoscaleConfig,
    policy: Box<dyn AutoscalePolicy>,
    engine: Rc<RefCell<EngineState<'a>>>,
    guard: OwnershipGuard,
    rng: StdRng,
    /// In-flight orders, sorted by `(ready_at, machine id)`.
    provisioning: Vec<Provision>,
    /// Standby machines, oldest first.
    warm: Vec<Machine>,
    next_eval: Micros,
    last_admitted: u64,
    last_no_capacity: u64,
    last_crashed: u64,
    next_id: MachineId,
    next_attr: i64,
    /// Victim-selection scratch.
    scratch: Vec<MachineId>,
    stats: Rc<RefCell<AutoscaleStats>>,
    /// Cell span log for control-plane decision spans (scale-up/down
    /// verdicts with the policy that made them).
    spans: Option<Rc<RefCell<SpanLog>>>,
}

impl<'a> Autoscaler<'a> {
    /// Builds the component against a cell's shared engine state,
    /// returning it together with the stats handle the driver reads
    /// after the run.
    pub fn new(
        cfg: AutoscaleConfig,
        policy: Box<dyn AutoscalePolicy>,
        engine: Rc<RefCell<EngineState<'a>>>,
        guard: OwnershipGuard,
    ) -> (Self, Rc<RefCell<AutoscaleStats>>) {
        let stats = Rc::new(RefCell::new(AutoscaleStats {
            policy: policy.name().to_string(),
            ..AutoscaleStats::default()
        }));
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xA07C_5CA1_E000_0000);
        let next_eval = cfg.cadence;
        let next_id = cfg.id_base;
        let next_attr = cfg.attr_base.unwrap_or(0);
        (
            Self {
                cfg,
                policy,
                engine,
                guard,
                rng,
                provisioning: Vec::new(),
                warm: Vec::new(),
                next_eval,
                last_admitted: 0,
                last_no_capacity: 0,
                last_crashed: 0,
                next_id,
                next_attr,
                scratch: Vec::new(),
                stats: stats.clone(),
                spans: None,
            },
            stats,
        )
    }

    /// Registers the cell's flight-recorder handle (from
    /// [`EngineState::enable_spans`]): every scale decision records a
    /// control span carrying the policy name, the machine delta and the
    /// crash-replacement count — the audit trail that answers "why was
    /// the autoscaler late".
    pub fn with_spans(mut self, spans: Rc<RefCell<SpanLog>>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Orders one machine from the template; it comes online (or joins
    /// the warm pool) after a sampled provisioning delay.
    fn order_machine(&mut self, now: Micros, dest: Destination) {
        let id = self.next_id;
        self.next_id += 1;
        let mut m = Machine::new(id, self.cfg.template.cpu, self.cfg.template.memory);
        if self.cfg.attr_base.is_some() {
            m.set_attr(0, AttrValue::Int(self.next_attr));
            self.next_attr += 1;
        }
        // Fresh ids are never contested, but the claim is what makes
        // "drain while provisioning" impossible for any other owner.
        let claimed = self.guard.try_claim(id, LifecycleOwner::Autoscaler);
        debug_assert!(claimed, "provisioned ids are namespaced and unclaimed");
        let ready_at = now + self.cfg.delay.sample(&mut self.rng);
        let pos = self
            .provisioning
            .partition_point(|p| (p.ready_at, p.machine.id) <= (ready_at, id));
        self.provisioning.insert(
            pos,
            Provision {
                ready_at,
                machine: m,
                dest,
            },
        );
        self.stats.borrow_mut().provisioned += 1;
    }

    /// Brings every due provisioning order online (or into the warm
    /// pool), in `(ready_at, id)` order. An order whose claim was
    /// displaced mid-provision (a crash overrode it) never comes online:
    /// the machine is dropped and the new owner keeps the claim.
    fn complete_due(&mut self, now: Micros) {
        while self.provisioning.first().is_some_and(|p| p.ready_at <= now) {
            let p = self.provisioning.remove(0);
            let id = p.machine.id;
            if self.guard.owner(id) != Some(LifecycleOwner::Autoscaler) {
                self.stats.borrow_mut().conflicts_skipped += 1;
                continue;
            }
            match p.dest {
                Destination::Active => {
                    // Admit while still holding the claim, then release:
                    // there is no instant where the machine is headed
                    // online but unclaimed — the ordering a same-instant
                    // drain could previously race.
                    self.engine.borrow_mut().admit_machine(p.machine);
                    self.guard.release_owned(id, LifecycleOwner::Autoscaler);
                }
                Destination::Warm => self.warm.push(p.machine),
            }
        }
    }

    /// In-flight orders headed for the live fleet.
    fn inflight_active(&self) -> usize {
        self.provisioning
            .iter()
            .filter(|p| p.dest == Destination::Active)
            .count()
    }

    /// Warm machines on hand or on order.
    fn warm_supply(&self) -> usize {
        self.warm.len()
            + self
                .provisioning
                .iter()
                .filter(|p| p.dest == Destination::Warm)
                .count()
    }

    /// Grows the live fleet by `need` machines: warm pool first, then
    /// fresh provisioning orders. A warm machine whose claim was
    /// displaced (it crashed while parked) is dropped, not activated.
    fn scale_up(&mut self, now: Micros, need: usize) {
        let mut remaining = need;
        while remaining > 0 {
            if self.warm.is_empty() {
                self.order_machine(now, Destination::Active);
                remaining -= 1;
                continue;
            }
            let m = self.warm.remove(0);
            let id = m.id;
            if self.guard.owner(id) != Some(LifecycleOwner::Autoscaler) {
                self.stats.borrow_mut().conflicts_skipped += 1;
                continue;
            }
            // Admit first, release second — the reverse order left an
            // instant where the machine was unclaimed but not yet in the
            // cluster, so a same-instant drain or crash claim could take
            // it and the late admit would resurrect it.
            self.engine.borrow_mut().admit_machine(m);
            self.guard.release_owned(id, LifecycleOwner::Autoscaler);
            self.stats.borrow_mut().warm_activations += 1;
            remaining -= 1;
        }
    }

    /// Shrinks the live fleet by up to `excess` machines, emptiest
    /// first: drain (tasks requeue through the engine's churn path),
    /// then park warm or decommission. Machines another owner holds are
    /// skipped, not contested.
    fn scale_down(&mut self, now: Micros, excess: usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.engine
            .borrow()
            .cluster
            .machines_by_free_cpu_desc(&mut scratch);
        let mut taken = 0usize;
        for &id in &scratch {
            if taken == excess {
                break;
            }
            if !self.guard.try_claim(id, LifecycleOwner::Autoscaler) {
                self.stats.borrow_mut().conflicts_skipped += 1;
                continue;
            }
            let mut engine = self.engine.borrow_mut();
            if !engine.drain_machine(id, now) {
                drop(engine);
                self.guard.release_owned(id, LifecycleOwner::Autoscaler);
                continue;
            }
            let m = engine
                .take_offline_machine(id)
                .expect("a just-drained machine is parked");
            drop(engine);
            self.stats.borrow_mut().drained += 1;
            if self.warm_supply() < self.cfg.warm_pool {
                self.warm.push(m); // keeps its claim while parked
            } else {
                self.guard.release_owned(id, LifecycleOwner::Autoscaler);
                self.stats.borrow_mut().decommissioned += 1;
            }
            taken += 1;
        }
        self.scratch = scratch;
    }

    /// Cancels in-flight Active-bound orders on a reversal (newest
    /// first), retargeting them to the warm pool while it has room.
    fn cancel_active_orders(&mut self, mut excess: usize) {
        for i in (0..self.provisioning.len()).rev() {
            if excess == 0 {
                break;
            }
            if self.provisioning[i].dest != Destination::Active {
                continue;
            }
            if self.warm_supply() < self.cfg.warm_pool {
                self.provisioning[i].dest = Destination::Warm;
            } else {
                let p = self.provisioning.remove(i);
                // If a crash displaced the provision claim, the fault
                // plane owns the id now — cancelling must not release a
                // claim that is no longer ours.
                self.guard
                    .release_owned(p.machine.id, LifecycleOwner::Autoscaler);
                self.stats.borrow_mut().cancelled += 1;
            }
            excess -= 1;
        }
    }

    /// One policy evaluation: sample signals, size, act.
    fn evaluate(&mut self, now: Micros) {
        let (signals, crash_lost) = {
            let engine = self.engine.borrow();
            let admitted = engine.admitted();
            let no_capacity = engine.no_capacity_events();
            let crashed = engine.crashed_machines();
            let s = Signals {
                now,
                fleet: engine.cluster.len(),
                pending: engine.main_queue_len()
                    + engine.hp_queue_len()
                    + engine.pending_gang_members(),
                utilisation: engine.cluster.cpu_utilisation(),
                admitted_delta: admitted - self.last_admitted,
                no_capacity_delta: no_capacity - self.last_no_capacity,
                recent_latency_mean: engine.recent_latency_mean(LATENCY_WINDOW),
            };
            self.last_admitted = admitted;
            self.last_no_capacity = no_capacity;
            let lost = crashed - self.last_crashed;
            self.last_crashed = crashed;
            (s, lost as usize)
        };
        let mut desired = self
            .policy
            .desired_fleet(&signals)
            .clamp(self.cfg.min, self.cfg.max);
        // Crash-induced capacity loss is a scale-up signal regardless of
        // policy: the fleet just shrank abruptly, so target at least the
        // pre-crash size (ceiling permitting) and order replacements
        // through the normal provisioning lifecycle.
        if crash_lost > 0 {
            desired = desired.max((signals.fleet + crash_lost).min(self.cfg.max));
        }
        // In-flight Active orders count toward the target, so a slow
        // provisioning delay does not compound into over-ordering.
        let committed = signals.fleet + self.inflight_active();
        if desired > committed {
            self.stats.borrow_mut().scale_ups += 1;
            let ordered = desired - committed;
            let replacements = crash_lost.min(ordered) as u64;
            if crash_lost > 0 {
                self.engine.borrow_mut().note_replacements(replacements);
            }
            if let Some(spans) = &self.spans {
                let cause = if crash_lost > 0 {
                    "crash_loss"
                } else {
                    "demand"
                };
                spans.borrow_mut().instant_ctrl(
                    0,
                    "scale_up",
                    now,
                    cause,
                    self.policy.name(),
                    "",
                    ordered as u64,
                    replacements,
                );
            }
            self.scale_up(now, ordered);
        } else if desired < signals.fleet {
            self.stats.borrow_mut().scale_downs += 1;
            let released = signals.fleet - desired;
            if let Some(spans) = &self.spans {
                spans.borrow_mut().instant_ctrl(
                    0,
                    "scale_down",
                    now,
                    "surplus",
                    self.policy.name(),
                    "",
                    released as u64,
                    0,
                );
            }
            self.cancel_active_orders(self.inflight_active());
            self.scale_down(now, released);
        } else if desired < committed {
            // Fleet is right-sized but orders are still in flight.
            self.cancel_active_orders(committed - desired);
        }
        // Keep the standby pool stocked (initial prefill included).
        let deficit = self.cfg.warm_pool.saturating_sub(self.warm_supply());
        for _ in 0..deficit {
            self.order_machine(now, Destination::Warm);
        }
    }

    /// Appends a timeline sample when the counts changed.
    fn record(&mut self, now: Micros) {
        let sample = FleetSample {
            time: now,
            active: self.engine.borrow().cluster.len(),
            warm: self.warm.len(),
            provisioning: self.provisioning.len(),
        };
        let mut stats = self.stats.borrow_mut();
        let same = stats.timeline.last().is_some_and(|last| {
            (last.active, last.warm, last.provisioning)
                == (sample.active, sample.warm, sample.provisioning)
        });
        if !same {
            stats.timeline.push(sample);
        }
    }
}

impl Component<SchedEvent> for Autoscaler<'_> {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        if self.stats.borrow().timeline.is_empty() {
            // First wake: baseline the timeline at the initial fleet
            // (and prefill the warm pool without waiting a cadence).
            self.record(now);
            let deficit = self.cfg.warm_pool.saturating_sub(self.warm_supply());
            for _ in 0..deficit {
                self.order_machine(now, Destination::Warm);
            }
        }
        self.complete_due(now);
        while self.next_eval <= now {
            self.next_eval += self.cfg.cadence;
            self.evaluate(now);
        }
        self.record(now);
        // Next wake: the earlier of the next provisioning completion and
        // the next evaluation tick, horizon permitting.
        let mut next = self.next_eval;
        if let Some(p) = self.provisioning.first() {
            next = next.min(p.ready_at);
        }
        if next <= self.cfg.horizon {
            ctx.emit_self_prio(next - now, PRIO_STATE, SchedEvent::Wake);
        }
    }
}
