//! Provisioning-delay distributions.
//!
//! Real fleets do not grow instantly: a scale-up order goes through
//! image pull, boot and registration before the machine can take work.
//! The autoscaler samples that delay from one of the deterministic
//! seeded distributions here (the same sampler family `ctlm-trace` uses
//! for request sizes), so elastic runs stay bit-reproducible.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use ctlm_trace::pareto::{BoundedPareto, Exponential};
use ctlm_trace::Micros;

/// How long a freshly ordered machine takes to come online.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProvisionDelay {
    /// Every machine takes exactly this long (µs).
    Fixed(Micros),
    /// Exponentially distributed boot times with the given mean (µs).
    Exponential {
        /// Mean delay (µs).
        mean: Micros,
    },
    /// Bounded-Pareto delays — mostly fast boots with a heavy tail of
    /// stragglers (image-pull storms, slow racks).
    Pareto {
        /// Minimum delay (µs).
        lo: f64,
        /// Maximum delay (µs).
        hi: f64,
        /// Tail exponent.
        alpha: f64,
    },
}

impl Default for ProvisionDelay {
    /// 30 simulated seconds — a cloud-VM-ish boot time.
    fn default() -> Self {
        ProvisionDelay::Fixed(30_000_000)
    }
}

impl ProvisionDelay {
    /// Draws one delay (µs, always ≥ 1).
    pub fn sample(&self, rng: &mut StdRng) -> Micros {
        match self {
            ProvisionDelay::Fixed(d) => (*d).max(1),
            ProvisionDelay::Exponential { mean } => {
                // A zero-mean spec degenerates to the fastest possible
                // boot rather than panicking the sampler.
                if *mean == 0 {
                    1
                } else {
                    (Exponential::new(*mean as f64).sample(rng) as Micros).max(1)
                }
            }
            ProvisionDelay::Pareto { lo, hi, alpha } => {
                (BoundedPareto::new(*lo, *hi, *alpha).sample(rng) as Micros).max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_are_positive_and_deterministic() {
        for delay in [
            ProvisionDelay::Fixed(0),
            ProvisionDelay::Fixed(5_000_000),
            ProvisionDelay::Exponential { mean: 2_000_000 },
            ProvisionDelay::Exponential { mean: 0 },
            ProvisionDelay::Pareto {
                lo: 1e6,
                hi: 6e7,
                alpha: 1.2,
            },
        ] {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..64 {
                let x = delay.sample(&mut a);
                assert!(x >= 1);
                assert_eq!(x, delay.sample(&mut b), "same seed, same delays");
            }
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let d = ProvisionDelay::Exponential { mean: 9_000_000 };
        let json = serde_json::to_string(&d).unwrap();
        let back: ProvisionDelay = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
