//! Autoscaling policies: signals in, desired fleet size out.
//!
//! A policy is a pure sizing function — it never touches machines. The
//! [`Autoscaler`](crate::fleet::Autoscaler) samples cell signals on its
//! evaluation cadence, asks the policy for a desired fleet size, clamps
//! the answer to the configured `[min, max]` band, and then drives the
//! machine lifecycle (warm-pool activation, provisioning, drain) to
//! close the gap. Keeping policies pure makes them trivially
//! deterministic and benchmarkable in isolation (the `autoscale` bench
//! family times exactly this decision path).

use std::collections::VecDeque;

use ctlm_trace::Micros;

/// One evaluation tick's view of a scheduling cell, sampled from the
/// engine's shared state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Signals {
    /// Simulation time of the sample (µs).
    pub now: Micros,
    /// Online machines right now.
    pub fleet: usize,
    /// Queue pressure: pending main + high-priority tasks plus gang
    /// members awaiting an all-or-nothing retry.
    pub pending: usize,
    /// Fleet CPU utilisation (0..1).
    pub utilisation: f64,
    /// Tasks admitted since the previous evaluation.
    pub admitted_delta: u64,
    /// `NoCapacity` placement outcomes since the previous evaluation —
    /// every count is one cycle slot burned on a task the fleet could
    /// suit but not hold (the `EngineState::can_admit`-failure signal).
    pub no_capacity_delta: u64,
    /// Mean scheduling latency over the recently placed tasks (µs).
    pub recent_latency_mean: Option<f64>,
}

/// A fleet-sizing policy. Implementations may keep internal state (the
/// predictive policy keeps its sliding window) but must stay
/// deterministic: identical signal sequences produce identical answers.
pub trait AutoscalePolicy {
    /// Registry / report name.
    fn name(&self) -> &'static str;

    /// Desired active fleet size for the latest signals. The caller
    /// clamps the answer to its `[min, max]` band — policies size for
    /// the load, the planner enforces the budget.
    fn desired_fleet(&mut self, s: &Signals) -> usize;
}

/// Threshold step-scaling: queue pressure above `up_pending` — or
/// recent admission latency above `up_latency`, when set — adds `step`
/// machines; an idle, under-utilised fleet (`pending == 0`,
/// utilisation below `down_util`) sheds `step`.
///
/// The classic alarm-driven scaler: simple, reactive, and prone to a
/// provisioning-delay lag under bursts — the behaviour the predictive
/// policy exists to beat.
#[derive(Clone, Copy, Debug)]
pub struct ThresholdStep {
    /// Queue-pressure level (pending + no-capacity events per tick)
    /// that triggers a scale-up.
    pub up_pending: usize,
    /// Recent mean admission latency (µs) that triggers a scale-up
    /// regardless of queue depth; `None` disables the latency alarm.
    pub up_latency: Option<f64>,
    /// Utilisation below which an idle fleet sheds machines.
    pub down_util: f64,
    /// Machines added or removed per decision.
    pub step: usize,
}

impl Default for ThresholdStep {
    fn default() -> Self {
        Self {
            up_pending: 8,
            up_latency: None,
            down_util: 0.3,
            step: 2,
        }
    }
}

impl AutoscalePolicy for ThresholdStep {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn desired_fleet(&mut self, s: &Signals) -> usize {
        let pressure = s.pending + s.no_capacity_delta as usize;
        let latency_alarm = self
            .up_latency
            .zip(s.recent_latency_mean)
            .is_some_and(|(limit, seen)| seen > limit);
        if pressure > self.up_pending || latency_alarm {
            s.fleet + self.step.max(1)
        } else if s.pending == 0 && s.utilisation < self.down_util {
            s.fleet.saturating_sub(self.step.max(1))
        } else {
            s.fleet
        }
    }
}

/// Target tracking on fleet utilisation: size the fleet so utilisation
/// lands on `target_util`, ignoring deviations within `tolerance`.
///
/// `desired = ceil(fleet × utilisation / target_util)` — the standard
/// cloud target-tracking rule. A saturated fleet grows geometrically
/// until utilisation falls back into the band; an idle one shrinks the
/// same way, so the policy self-corrects in a handful of evaluations.
#[derive(Clone, Copy, Debug)]
pub struct TargetTracking {
    /// Utilisation the fleet should settle at (0..1).
    pub target_util: f64,
    /// Dead band around the target within which nothing happens.
    pub tolerance: f64,
}

impl Default for TargetTracking {
    fn default() -> Self {
        Self {
            target_util: 0.6,
            tolerance: 0.1,
        }
    }
}

impl AutoscalePolicy for TargetTracking {
    fn name(&self) -> &'static str {
        "target_tracking"
    }

    fn desired_fleet(&mut self, s: &Signals) -> usize {
        let target = self.target_util.clamp(0.05, 1.0);
        if (s.utilisation - target).abs() <= self.tolerance {
            return s.fleet;
        }
        let desired = (s.fleet as f64 * s.utilisation / target).ceil() as usize;
        // A backlog means measured utilisation *understates* demand
        // (queued work holds no CPU yet); never shrink under pressure.
        if s.pending > 0 {
            desired.max(s.fleet)
        } else {
            desired
        }
    }
}

/// Predictive scaling: forecast the next evaluation period's arrivals
/// from a sliding window of observed arrival counts (linear trend), and
/// size the fleet for the *forecast* concurrency rather than the
/// current one — paying the provisioning delay before the burst peaks
/// instead of after.
///
/// Concurrency model: tasks arrive at the forecast rate, each holding
/// `task_cpu` of a machine (of `machine_cpu` capacity) for
/// `task_duration` µs; the fleet needs
/// `rate × duration × task_cpu × headroom / machine_cpu` machines.
#[derive(Clone, Debug)]
pub struct Predictive {
    /// Sliding-window length, in evaluation periods.
    pub window: usize,
    /// Capacity multiplier over the point forecast (≥ 1 leaves slack).
    pub headroom: f64,
    /// Estimated CPU request per task.
    pub task_cpu: f64,
    /// Estimated task runtime (µs) — lab wiring passes the spec's mean.
    pub task_duration: Micros,
    /// CPU capacity of one machine (the provisioning template's size).
    pub machine_cpu: f64,
    /// `(sample time, arrivals since previous sample)` history.
    history: VecDeque<(Micros, u64)>,
}

impl Predictive {
    /// A predictive policy with the given window and workload estimates.
    pub fn new(
        window: usize,
        headroom: f64,
        task_cpu: f64,
        task_duration: Micros,
        machine_cpu: f64,
    ) -> Self {
        Self {
            window: window.max(2),
            headroom: headroom.max(1.0),
            task_cpu: task_cpu.max(1e-3),
            task_duration: task_duration.max(1),
            machine_cpu: machine_cpu.max(1e-3),
            history: VecDeque::new(),
        }
    }

    /// Least-squares linear extrapolation of the next window sample from
    /// the recorded arrival deltas; falls back to the last observation
    /// while the window is still filling.
    fn forecast_arrivals(&self) -> f64 {
        let n = self.history.len();
        if n == 0 {
            return 0.0;
        }
        if n == 1 {
            return self.history[0].1 as f64;
        }
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (i, &(_, d)) in self.history.iter().enumerate() {
            let (x, y) = (i as f64, d as f64);
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let nf = n as f64;
        let denom = nf * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return sy / nf;
        }
        let slope = (nf * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / nf;
        (intercept + slope * nf).max(0.0)
    }
}

impl AutoscalePolicy for Predictive {
    fn name(&self) -> &'static str {
        "predictive"
    }

    fn desired_fleet(&mut self, s: &Signals) -> usize {
        self.history.push_back((s.now, s.admitted_delta));
        while self.history.len() > self.window {
            self.history.pop_front();
        }
        // Arrival *rate* needs the sampling period, derived from the
        // window's own timestamps (robust to a changed cadence) — so a
        // single sample has no rate basis at all: hold the fleet rather
        // than divide by a degenerate 1 µs period and slam into `max`.
        let span = self
            .history
            .back()
            .zip(self.history.front())
            .map(|(b, f)| b.0.saturating_sub(f.0))
            .unwrap_or(0);
        if span == 0 {
            return s.fleet;
        }
        let periods = (self.history.len() - 1).max(1) as f64;
        let period = (span as f64 / periods).max(1.0);
        let rate = self.forecast_arrivals() / period; // tasks per µs
        let concurrency = rate * self.task_duration as f64 * self.task_cpu;
        let desired = (concurrency * self.headroom / self.machine_cpu).ceil() as usize;
        // Like target tracking: a live backlog forbids shrinking.
        if s.pending > 0 {
            desired.max(s.fleet)
        } else {
            desired
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(fleet: usize, pending: usize, util: f64) -> Signals {
        Signals {
            now: 0,
            fleet,
            pending,
            utilisation: util,
            admitted_delta: 0,
            no_capacity_delta: 0,
            recent_latency_mean: None,
        }
    }

    #[test]
    fn threshold_steps_up_and_down() {
        let mut p = ThresholdStep {
            up_pending: 4,
            up_latency: None,
            down_util: 0.3,
            step: 3,
        };
        assert_eq!(
            p.desired_fleet(&sig(10, 9, 0.8)),
            13,
            "pressure adds a step"
        );
        assert_eq!(p.desired_fleet(&sig(10, 2, 0.5)), 10, "in band holds");
        assert_eq!(p.desired_fleet(&sig(10, 0, 0.1)), 7, "idle sheds a step");
        // No-capacity events count as pressure even with a short queue.
        let mut s = sig(10, 2, 0.8);
        s.no_capacity_delta = 6;
        assert_eq!(p.desired_fleet(&s), 13);
        // The latency alarm scales up even when the queue looks short.
        p.up_latency = Some(400_000.0);
        let mut s = sig(10, 1, 0.5);
        s.recent_latency_mean = Some(900_000.0);
        assert_eq!(p.desired_fleet(&s), 13, "slow admissions add a step");
        s.recent_latency_mean = Some(100_000.0);
        assert_eq!(p.desired_fleet(&s), 10, "fast admissions hold");
    }

    #[test]
    fn target_tracking_converges_on_target() {
        let mut p = TargetTracking {
            target_util: 0.5,
            tolerance: 0.05,
        };
        assert_eq!(p.desired_fleet(&sig(10, 0, 1.0)), 20, "overload doubles");
        assert_eq!(p.desired_fleet(&sig(20, 0, 0.25)), 10, "idle halves");
        assert_eq!(p.desired_fleet(&sig(10, 0, 0.52)), 10, "dead band holds");
        assert_eq!(
            p.desired_fleet(&sig(10, 5, 0.2)),
            10,
            "a backlog forbids shrinking"
        );
    }

    #[test]
    fn predictive_extrapolates_a_growing_trend() {
        let mut p = Predictive::new(4, 1.0, 0.25, 8_000_000, 1.0);
        // Arrival deltas 10, 20, 30, 40 per 1 s period → forecast 50/s;
        // concurrency = 50e-6 tasks/µs × 8e6 µs × 0.25 cpu = 100 cpus.
        let mut desired = 0;
        for (k, d) in [10u64, 20, 30, 40].into_iter().enumerate() {
            let mut s = sig(4, 0, 0.5);
            s.now = (k as u64 + 1) * 1_000_000;
            s.admitted_delta = d;
            desired = p.desired_fleet(&s);
        }
        assert_eq!(desired, 100, "linear trend forecast sizes ahead of load");
        // A flat history forecasts the flat rate.
        let mut flat = Predictive::new(4, 1.0, 0.25, 8_000_000, 1.0);
        let mut desired = 0;
        for k in 0..4u64 {
            let mut s = sig(4, 0, 0.5);
            s.now = (k + 1) * 1_000_000;
            s.admitted_delta = 10;
            desired = flat.desired_fleet(&s);
        }
        assert_eq!(desired, 20, "10/s × 8 s × 0.25 cpu = 20 machines");
    }

    #[test]
    fn predictive_holds_the_fleet_until_it_has_a_rate_basis() {
        // One sample gives no sampling period; the first tick must not
        // divide by a degenerate 1 µs and demand an absurd fleet.
        let mut p = Predictive::new(4, 1.0, 0.25, 8_000_000, 1.0);
        let mut s = sig(4, 0, 0.5);
        s.now = 2_000_000;
        s.admitted_delta = 10;
        assert_eq!(p.desired_fleet(&s), 4, "first tick holds the fleet");
        // The second sample establishes a period and forecasting starts.
        let mut s2 = sig(4, 0, 0.5);
        s2.now = 4_000_000;
        s2.admitted_delta = 10;
        assert_eq!(p.desired_fleet(&s2), 10, "10/2s × 8s × 0.25 = 10");
    }

    #[test]
    fn predictive_is_deterministic_for_identical_histories() {
        let run = || {
            let mut p = Predictive::new(6, 1.3, 0.2, 5_000_000, 1.0);
            (0..12u64)
                .map(|k| {
                    let mut s = sig(3, (k % 3) as usize, 0.4);
                    s.now = k * 2_000_000;
                    s.admitted_delta = (k * 7) % 23;
                    p.desired_fleet(&s)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
