//! Sweep expansion and parallel execution.
//!
//! The grid is the cartesian product of every knob's values crossed with
//! `seeds` × `repeats`. Each grid point is materialized by rewriting the
//! *normalized* spec document (defaults filled in) at the knob paths,
//! then re-deserializing — so a knob can address any numeric field the
//! schema exposes without per-knob plumbing. Points run concurrently on
//! the rayon shim's persistent worker pool.

use rayon::prelude::*;
use serde::Deserialize;
use serde_json::Value;

use crate::observe::Observations;
use crate::report::{knob_settings, summarize, LabReport, RunReport, SchedulerRun};
use crate::run::{run_scheduler_observed, ArrivalMode};
use crate::spec::ExperimentSpec;
use crate::LabError;

/// One expanded grid point, ready to execute.
struct Point {
    knob_choice: Vec<usize>,
    seed: u64,
    repeat: usize,
    spec: ExperimentSpec,
}

/// Parses, expands and executes a spec from JSON text, returning the
/// full report.
pub fn run_spec_json(text: &str) -> Result<LabReport, LabError> {
    let spec = ExperimentSpec::from_json(text)?;
    run_spec(&spec)
}

/// Expands and executes a parsed spec. Synthetic arrivals stream
/// (decoded chunk by chunk at attach time) wherever nothing needs the
/// whole population up front; the report is bit-identical to
/// [`run_spec_materialised`].
pub fn run_spec(spec: &ExperimentSpec) -> Result<LabReport, LabError> {
    run_spec_observed(spec, ArrivalMode::Streaming).map(|(report, _)| report)
}

/// [`run_spec`], but with every arrival list materialised up front — the
/// classic path. Exists so tests (and `ctlm-lab --materialised`) can pin
/// the streamed report against it.
pub fn run_spec_materialised(spec: &ExperimentSpec) -> Result<LabReport, LabError> {
    run_spec_observed(spec, ArrivalMode::Materialised).map(|(report, _)| report)
}

/// Expands and executes a spec, also returning the accumulated
/// observations: the deterministic metrics registry (and traces, when
/// the spec enabled them) plus the wall-clock shard profile when
/// `observability.profile` is on. Per-point observations are merged in
/// grid order, so the metrics side is byte-identical however the points
/// were scheduled onto workers — and for every `execution.threads`.
pub fn run_spec_observed(
    spec: &ExperimentSpec,
    mode: ArrivalMode,
) -> Result<(LabReport, Observations), LabError> {
    spec.validate()?;
    // Normalize: serialize the parsed spec so every defaulted field
    // exists in the document and knob paths always resolve.
    let base = spec.to_value();
    let points = expand(spec, &base)?;
    let runs: Vec<Result<(RunReport, Observations), LabError>> = points
        .par_iter()
        .map(|p| {
            let mut obs = Observations::default();
            let schedulers = p
                .spec
                .scheduler_names()
                .iter()
                .map(|name| {
                    let (outcomes, perf) = run_scheduler_observed(&p.spec, name, mode)?;
                    // `threads == 0` means "pool width" (the ParallelSim
                    // convention); record the width that actually ran so
                    // `_perf.threads` is meaningful.
                    let threads = match p.spec.execution.threads {
                        0 => rayon::current_num_threads().max(1),
                        n => n,
                    };
                    obs.record_run(name, &outcomes, perf.as_ref(), threads);
                    Ok(SchedulerRun {
                        scheduler: name.clone(),
                        cells: outcomes
                            .iter()
                            .map(crate::report::CellRun::from_outcome)
                            .collect(),
                    })
                })
                .collect::<Result<Vec<_>, LabError>>()?;
            Ok((
                RunReport {
                    knobs: p
                        .spec
                        .sweep
                        .as_ref()
                        .map(|s| knob_settings(&s.knobs, &p.knob_choice))
                        .unwrap_or_default(),
                    seed: p.seed,
                    repeat: p.repeat,
                    schedulers,
                },
                obs,
            ))
        })
        .collect();
    // `collect` preserved point order, so this fold is deterministic no
    // matter which workers ran which points.
    let mut runs_out = Vec::with_capacity(runs.len());
    let mut obs = Observations::default();
    for r in runs {
        let (run, o) = r?;
        runs_out.push(run);
        obs.merge(&o);
    }
    let summary = summarize(&runs_out);
    Ok((
        LabReport {
            name: spec.name.clone(),
            runs: runs_out,
            summary,
            _meta: None,
        },
        obs,
    ))
}

impl ExperimentSpec {
    /// The spec as a normalized `Value` document (all defaults present).
    pub fn to_value(&self) -> Value {
        serde::Serialize::to_value(self)
    }
}

/// Expands the sweep grid into concrete per-point specs.
fn expand(spec: &ExperimentSpec, base: &Value) -> Result<Vec<Point>, LabError> {
    let (knobs, seeds, repeats) = match &spec.sweep {
        Some(s) => (
            s.knobs.clone(),
            if s.seeds.is_empty() {
                vec![spec.sim.seed]
            } else {
                s.seeds.clone()
            },
            s.repeats.max(1),
        ),
        None => (Vec::new(), vec![spec.sim.seed], 1),
    };
    let mut points = Vec::new();
    let mut choice = vec![0usize; knobs.len()];
    loop {
        for &seed in &seeds {
            for repeat in 0..repeats {
                let mut doc = base.clone();
                for (k, &i) in knobs.iter().zip(&choice) {
                    set_path(&mut doc, &k.path, Value::Num(k.values[i]))?;
                }
                // Repeats differentiate by seed (a deterministic kernel
                // re-run under the same seed is byte-identical); mixed
                // multiplicatively so repeat seeds never collide with
                // other listed sweep seeds. Assigned on the parsed spec,
                // NOT through the document: the JSON value model carries
                // numbers as f64, which would round distinct u64 seeds
                // above 2^53 to the same value.
                let effective = seed ^ (repeat as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut spec: ExperimentSpec =
                    Deserialize::from_value(&doc).map_err(LabError::from)?;
                spec.sim.seed = effective;
                points.push(Point {
                    knob_choice: choice.clone(),
                    seed: effective,
                    repeat,
                    spec,
                });
            }
        }
        // Odometer increment over the knob value indices.
        let mut dim = knobs.len();
        loop {
            if dim == 0 {
                return Ok(points);
            }
            dim -= 1;
            choice[dim] += 1;
            if choice[dim] < knobs[dim].values.len() {
                break;
            }
            choice[dim] = 0;
        }
    }
}

/// Rewrites the document at a dotted path (`"scenario.churn.failures"`,
/// array indices as numeric segments: `"cells.0.workload.Synthetic.tasks"`).
/// The path must already exist — sweeps rewrite knobs, they do not
/// invent fields.
pub fn set_path(doc: &mut Value, path: &str, new: Value) -> Result<(), LabError> {
    let mut cursor = doc;
    let mut walked = String::new();
    for seg in path.split('.') {
        if !walked.is_empty() {
            walked.push('.');
        }
        walked.push_str(seg);
        cursor = match cursor {
            Value::Object(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == seg)
                .map(|(_, v)| v)
                .ok_or_else(|| {
                    LabError::msg(format!("knob path {path:?}: no field at {walked:?}"))
                })?,
            Value::Array(items) => {
                let idx: usize = seg.parse().map_err(|_| {
                    LabError::msg(format!(
                        "knob path {path:?}: {walked:?} indexes an array but is not a number"
                    ))
                })?;
                items.get_mut(idx).ok_or_else(|| {
                    LabError::msg(format!("knob path {path:?}: index {walked:?} out of range"))
                })?
            }
            _ => {
                return Err(LabError::msg(format!(
                    "knob path {path:?}: {walked:?} is a leaf, cannot descend"
                )))
            }
        };
    }
    match cursor {
        Value::Num(_) | Value::Null => {
            *cursor = new;
            Ok(())
        }
        other => Err(LabError::msg(format!(
            "knob path {path:?} points at non-numeric value {other:?}"
        ))),
    }
}
