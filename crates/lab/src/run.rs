//! Spec → one assembled kernel run (all cells on one timeline).
//!
//! For every scheduler name in the spec, this module attaches each built
//! cell to a shared `ctlm-sim` simulation via
//! [`Simulator::attach_cell`], joins the scenario components (churn,
//! gangs, rollouts, retraining) and — for multi-cell specs with
//! `spillover` — routes every arrival through the spillover router,
//! which forwards tasks a cell cannot admit to the first sibling that
//! can. One `run_until(horizon)` then drives everything.

use std::cell::RefCell;
use std::rc::Rc;

use ctlm_autoscale::{AutoscaleStats, Autoscaler};
use ctlm_core::ModelRegistry;
use ctlm_core::{GrowingModel, TaskCoAnalyzer, TrainConfig};
use ctlm_data::dataset::{DatasetBuilder, NUM_GROUPS};
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_data::vocab::ValueVocab;
use ctlm_sched::engine::{EngineState, PRIO_ADMIT, PRIO_STATE};
use ctlm_sched::scenario::{ChurnSource, GangSource, RolloutSource};
use ctlm_sched::{OwnershipGuard, PendingTask, SchedCluster, SchedEvent, SimResult, Simulator};
use ctlm_sim::{CompId, Component, Ctx, Event, Sim};
use ctlm_trace::Micros;

use crate::build::{build_cell, BuiltCell};
use crate::registry::{
    build_autoscale_policy, build_placer, build_scheduler, train_config, SchedulerInstance,
};
use crate::spec::{ExperimentSpec, SpilloverPolicy};
use crate::LabError;

/// Minimum observed arrivals before the retraining component bothers
/// training a model (tiny datasets make the stratified split degenerate).
const RETRAIN_MIN_ROWS: usize = 20;

/// One cell's outcome under one scheduler.
pub struct CellOutcome {
    /// Cell name.
    pub cell: String,
    /// The engine's result.
    pub result: SimResult,
    /// Tasks this cell received from siblings via spillover.
    pub spilled_in: usize,
    /// Tasks whose home was this cell but which were admitted elsewhere.
    pub spilled_out: usize,
    /// What the cell's autoscaler did (fleet timeline included), when
    /// the scenario ran one.
    pub autoscale: Option<AutoscaleStats>,
}

/// Runs the spec once under the named scheduler, returning per-cell
/// outcomes.
pub fn run_scheduler(
    spec: &ExperimentSpec,
    sched_name: &str,
) -> Result<Vec<CellOutcome>, LabError> {
    let cell_specs = spec.cell_specs();
    let mut built: Vec<BuiltCell> = cell_specs
        .iter()
        .enumerate()
        .map(|(i, cs)| build_cell(cs, &spec.sim, i))
        .collect::<Result<_, _>>()?;
    let mut instances: Vec<SchedulerInstance> = built
        .iter()
        .map(|c| build_scheduler(sched_name, c, &spec.train, spec.sim.seed))
        .collect::<Result<_, _>>()?;
    let registries: Vec<Option<ModelRegistry>> =
        instances.iter().map(|i| i.registry.clone()).collect();
    let simulators: Vec<Simulator> = (0..built.len())
        .map(|_| {
            Ok(Simulator::new(spec.sim).with_placers(
                build_placer(&spec.placers.main, &spec.placers)?,
                build_placer(&spec.placers.hp, &spec.placers)?,
            ))
        })
        .collect::<Result<_, LabError>>()?;
    let clusters: Vec<SchedCluster> = built
        .iter_mut()
        .map(|c| std::mem::take(&mut c.cluster))
        .collect();
    let route_all = spec.spillover.enabled() && built.len() > 1;
    let horizon = spec.sim.horizon;

    let mut sim: Sim<'_, SchedEvent> = Sim::new();
    let mut handles = Vec::with_capacity(built.len());
    let mut autoscale_stats: Vec<Option<Rc<RefCell<AutoscaleStats>>>> =
        Vec::with_capacity(built.len());
    for (((cell, simulator), instance), cluster) in built
        .iter()
        .zip(&simulators)
        .zip(instances.iter_mut())
        .zip(clusters)
    {
        // Spillover mode feeds every arrival through the router instead
        // of the cell's own arrival source.
        let arrivals: &[PendingTask] = if route_all { &[] } else { &cell.arrivals };
        let handle = simulator.attach_cell(
            &mut sim,
            &cell.name,
            cluster,
            arrivals,
            instance.scheduler.as_mut(),
        );
        // Churn and the autoscaler mutate the same fleet; the shared
        // guard keeps them off each other's machines.
        let guard = OwnershipGuard::new();
        if let Some(plan) = &cell.churn {
            let churn = ChurnSource::new(plan.clone(), handle.engine).with_guard(guard.clone());
            let first = churn.first_time();
            let id = sim.add_component(format!("{}/churn", cell.name), churn);
            if let Some(t) = first {
                sim.schedule_prio(t, PRIO_STATE, id, id, SchedEvent::Wake);
            }
        }
        if let Some(auto) = &cell.autoscale {
            let policy = build_autoscale_policy(
                &auto.policy,
                &auto.params,
                &spec.sim,
                &auto.config.template,
            )?;
            let (scaler, stats) =
                Autoscaler::new(auto.config.clone(), policy, handle.state(), guard);
            let id = sim.add_component(format!("{}/autoscaler", cell.name), scaler);
            sim.schedule_prio(0, PRIO_STATE, id, id, SchedEvent::Wake);
            autoscale_stats.push(Some(stats));
        } else {
            autoscale_stats.push(None);
        }
        if !cell.gangs.is_empty() {
            let gangs = GangSource::new(cell.gangs.clone(), handle.engine);
            let first = gangs.first_time();
            let id = sim.add_component(format!("{}/gangs", cell.name), gangs);
            if let Some(t) = first {
                sim.schedule_prio(t, PRIO_ADMIT, id, id, SchedEvent::Wake);
            }
        }
        if let Some((attr, stages)) = &cell.rollout {
            let rollout = RolloutSource::new(*attr, stages.clone(), handle.engine);
            let first = rollout.first_time();
            let id = sim.add_component(format!("{}/rollout", cell.name), rollout);
            if let Some(t) = first {
                sim.schedule_prio(t, PRIO_STATE, id, id, SchedEvent::Wake);
            }
        }
        handles.push(handle);
    }
    // In-timeline retraining: only meaningful when the scheduler reads a
    // registry (`live_registry`); otherwise the cadence is inert.
    for ((cell, registry), _) in built.iter().zip(&registries).zip(&handles) {
        let (Some(retrain), Some(registry)) = (&cell.retrain, registry) else {
            continue;
        };
        let source = RetrainSource::new(
            cell,
            registry.clone(),
            train_config(&spec.train),
            retrain.period,
            horizon,
            spec.sim.seed,
        );
        let first = if retrain.start > 0 {
            retrain.start
        } else {
            retrain.period
        };
        let id = sim.add_component(format!("{}/retrain", cell.name), source);
        sim.schedule_prio(first, PRIO_STATE, id, id, SchedEvent::Wake);
    }
    let spills = Rc::new(RefCell::new(vec![(0usize, 0usize); built.len()]));
    if route_all {
        // Index-based merge: tasks stay in their cell's arrival list and
        // are cloned exactly once, at the Admit emit — no O(N) upfront
        // duplication (the same no-per-task-clone discipline as
        // `ArrivalSource`).
        let mut merged: Vec<(Micros, usize, usize)> = Vec::new();
        for (home, cell) in built.iter().enumerate() {
            for (idx, t) in cell.arrivals.iter().enumerate() {
                merged.push((t.arrival, home, idx));
            }
        }
        merged.sort_unstable();
        let first = merged.first().map(|&(t, ..)| t);
        let router = SpilloverRouter {
            tasks: merged,
            next: 0,
            arrivals: built.iter().map(|c| c.arrivals.as_slice()).collect(),
            cells: handles.iter().map(|h| (h.engine, h.state())).collect(),
            policy: spec.spillover,
            spills: spills.clone(),
        };
        let id = sim.add_component("spillover_router", router);
        if let Some(t) = first {
            sim.schedule_prio(t, PRIO_ADMIT, id, id, SchedEvent::Wake);
        }
    }

    sim.run_until(horizon);
    drop(sim);

    let spills = spills.borrow();
    Ok(handles
        .iter()
        .zip(built.iter())
        .enumerate()
        .map(|(i, (handle, cell))| {
            let (_, result) = handle.finish();
            CellOutcome {
                cell: cell.name.clone(),
                result,
                spilled_in: spills[i].0,
                spilled_out: spills[i].1,
                autoscale: autoscale_stats[i].as_ref().map(|s| s.borrow().clone()),
            }
        })
        .collect())
}

/// Routes merged arrivals to their home cell when it can admit them,
/// otherwise to a feasible sibling — the first one found (scanning
/// forward, wrapping) under [`SpilloverPolicy::FirstFeasible`], or the
/// one with the lowest CPU utilisation (ties: lowest cell index) under
/// [`SpilloverPolicy::LeastLoaded`]. Tasks nobody can admit right now
/// still go to their home cell's queue.
struct SpilloverRouter<'a> {
    /// `(time, home cell, arrival index)` sorted ascending.
    tasks: Vec<(Micros, usize, usize)>,
    next: usize,
    /// Each cell's arrival list, borrowed from the built cells.
    arrivals: Vec<&'a [PendingTask]>,
    /// `(engine id, engine state)` per cell, in spec order.
    cells: Vec<(CompId, Rc<RefCell<EngineState<'a>>>)>,
    /// Sibling-selection policy from the spec.
    policy: SpilloverPolicy,
    /// Per-cell `(spilled_in, spilled_out)` counters shared with the
    /// driver.
    spills: Rc<RefCell<Vec<(usize, usize)>>>,
}

impl SpilloverRouter<'_> {
    fn route(&self, home: usize, task: &PendingTask) -> usize {
        if self.cells[home].1.borrow().can_admit(task) {
            return home;
        }
        match self.policy {
            SpilloverPolicy::LeastLoaded => {
                // Score every feasible sibling by current CPU
                // utilisation; deterministic tie-break on cell index.
                let mut best: Option<(f64, usize)> = None;
                for offset in 1..self.cells.len() {
                    let i = (home + offset) % self.cells.len();
                    let state = self.cells[i].1.borrow();
                    if state.can_admit(task) {
                        let key = (state.cluster.cpu_utilisation(), i);
                        if best.is_none_or(|(bl, bi)| key < (bl, bi)) {
                            best = Some(key);
                        }
                    }
                }
                best.map(|(_, i)| i).unwrap_or(home)
            }
            _ => {
                for offset in 1..self.cells.len() {
                    let i = (home + offset) % self.cells.len();
                    if self.cells[i].1.borrow().can_admit(task) {
                        return i;
                    }
                }
                home
            }
        }
    }
}

impl Component<SchedEvent> for SpilloverRouter<'_> {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        while self.next < self.tasks.len() && self.tasks[self.next].0 <= now {
            let (_, home, idx) = self.tasks[self.next];
            let task = &self.arrivals[home][idx];
            let target = self.route(home, task);
            if target != home {
                let mut s = self.spills.borrow_mut();
                s[target].0 += 1;
                s[home].1 += 1;
            }
            ctx.emit_prio(
                0,
                PRIO_ADMIT,
                self.cells[target].0,
                SchedEvent::Admit(Box::new(task.clone())),
            );
            self.next += 1;
        }
        if self.next < self.tasks.len() {
            let delay = self.tasks[self.next].0 - now;
            ctx.emit_self_prio(delay, PRIO_ADMIT, SchedEvent::Wake);
        }
    }
}

/// The online-retraining scenario component: every `period`, retrain on
/// the arrivals observed so far and hot-swap the result into the run's
/// [`ModelRegistry`] — the declarative form of the paper's
/// replay-retrain-schedule loop. Training happens synchronously on the
/// simulation timeline, so runs stay bit-deterministic.
/// One training row: `(arrival time, sparse CO-VV entries, label)`.
type LabeledRow = (Micros, Vec<(usize, f32)>, u8);

pub struct RetrainSource {
    /// Training rows sorted by arrival.
    rows: Vec<LabeledRow>,
    width: usize,
    vocab: ValueVocab,
    model: GrowingModel,
    registry: ModelRegistry,
    period: Micros,
    horizon: Micros,
    seed: u64,
    trained_upto: usize,
    ticks: u64,
}

impl RetrainSource {
    /// Builds the component from a cell's arrival population.
    pub fn new(
        cell: &BuiltCell,
        registry: ModelRegistry,
        config: TrainConfig,
        period: Micros,
        horizon: Micros,
        seed: u64,
    ) -> Self {
        let enc = CoVvEncoder;
        let mut rows: Vec<LabeledRow> = cell
            .arrivals
            .iter()
            .map(|t| {
                (
                    t.arrival,
                    enc.encode_requirements(&t.reqs, &cell.vocab),
                    t.truth_group,
                )
            })
            .collect();
        rows.sort_by_key(|&(t, ..)| t);
        Self {
            rows,
            width: cell.vocab.len(),
            vocab: cell.vocab.clone(),
            model: GrowingModel::new(config),
            registry,
            period,
            horizon,
            seed,
            trained_upto: 0,
            ticks: 0,
        }
    }

    /// Number of models installed so far.
    pub fn installs(&self) -> u64 {
        self.ticks
    }
}

impl Component<SchedEvent> for RetrainSource {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        let seen = self.rows.partition_point(|&(t, ..)| t <= now);
        if seen >= RETRAIN_MIN_ROWS && seen > self.trained_upto {
            self.trained_upto = seen;
            let mut b = DatasetBuilder::new(self.width, NUM_GROUPS);
            for (_, row, label) in &self.rows[..seen] {
                b.push(row.iter().copied(), *label);
            }
            let ds = b.snapshot(self.width);
            self.model
                .step(&ds, self.seed ^ self.ticks.wrapping_mul(0x9E37_79B9));
            self.registry
                .install(TaskCoAnalyzer::new(self.model.to_net(), self.vocab.clone()));
            self.ticks += 1;
        }
        if now + self.period <= self.horizon {
            ctx.emit_self_prio(self.period, PRIO_STATE, SchedEvent::Wake);
        }
    }
}
