//! Spec → one assembled kernel run.
//!
//! Single-cell specs assemble the classic single-timeline harness: the
//! cell's components attach to one `ctlm-sim` [`Sim`] and
//! `run_until(horizon)` drives it. Multi-cell specs run **epoch-sharded**:
//! every cell becomes its own kernel shard (its own clock and event
//! queue) hosted on a [`ParallelSim`] coordinator, which advances all
//! shards epoch by epoch on the rayon pool — `execution.threads` wide —
//! and exchanges cross-cell traffic only at epoch barriers. The only
//! cross-cell traffic is spillover: a [`SpilloverForwarder`](ctlm_sched::engine::SpilloverForwarder) emits
//! [`SchedEvent::SpillRequest`] outbox entries for tasks its home cell
//! cannot admit, and the barrier hook here routes them (home cell or a
//! feasible sibling, per the spillover policy) in the coordinator's
//! deterministic `(time, priority, shard, seq)` merge order. Everything
//! else — churn, autoscalers with their ownership guards, gang and
//! rollout sources, in-timeline retraining — is per-cell state and stays
//! inside its shard, which is what makes dispatching shards to worker
//! threads sound (see the `ctlm_sim::parallel` island invariant).
//! Model registries are `Arc`-based and safe to hot-swap from a shard.
//!
//! Because multi-cell specs *always* run the epoch-sharded semantics
//! (thread count only changes which OS thread runs a shard), reports
//! are bit-identical for any `execution.threads` value.

use std::cell::RefCell;
use std::rc::Rc;

use ctlm_autoscale::{AutoscaleStats, Autoscaler};
use ctlm_core::ModelRegistry;
use ctlm_core::{GrowingModel, TaskCoAnalyzer, TrainConfig};
use ctlm_data::dataset::{DatasetBuilder, NUM_GROUPS};
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_data::vocab::ValueVocab;
use ctlm_sched::engine::{CellHandle, EngineState, PRIO_ADMIT, PRIO_STATE};
use ctlm_sched::scenario::{ChurnSource, GangSource, RolloutSource};
use ctlm_sched::{
    EngineStats, ExponentialBackoff, FaultPlane, FaultStats, FixedRetry, OwnershipGuard,
    PendingTask, RetryPolicy, SchedCluster, SchedEvent, Scheduler, SimResult, Simulator,
};
use ctlm_sim::{Component, Ctx, EpochAutotune, Event, LaneStats, ParallelPerf, ParallelSim, Sim};
use ctlm_telemetry::{SpanLog, TraceRing};
use ctlm_trace::Micros;

use crate::build::{build_cell, BuiltArrivals, BuiltCell, CELL_ID_STRIDE};
use crate::registry::{
    build_autoscale_policy, build_placer, build_scheduler, train_config, SchedulerInstance,
};
use crate::spec::{ExperimentSpec, SpilloverPolicy, WorkloadSpec};
use crate::stream::SyntheticStream;
use crate::LabError;

/// How a run realises its synthetic arrival populations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Decode synthetic arrivals chunk by chunk at attach time — peak
    /// memory O(chunk) per cell. Cells that cannot stream (trace
    /// slices, model-backed schedulers and retraining scenarios, which
    /// train on the whole population) silently fall back to
    /// materialising; results are bit-identical either way.
    Streaming,
    /// Materialise every arrival list up front (the classic path).
    Materialised,
}

/// Minimum observed arrivals before the retraining component bothers
/// training a model (tiny datasets make the stratified split degenerate).
const RETRAIN_MIN_ROWS: usize = 20;

/// One cell's outcome under one scheduler.
pub struct CellOutcome {
    /// Cell name.
    pub cell: String,
    /// The engine's result.
    pub result: SimResult,
    /// Tasks this cell received from siblings via spillover.
    pub spilled_in: usize,
    /// Tasks whose home was this cell but which were admitted elsewhere.
    pub spilled_out: usize,
    /// What the cell's autoscaler did (fleet timeline included), when
    /// the scenario ran one.
    pub autoscale: Option<AutoscaleStats>,
    /// Recovery accounting, when the scenario ran a fault plane.
    pub recovery: Option<crate::report::RecoveryReport>,
    /// Sim-plane telemetry snapshotted at the end of the run.
    pub telemetry: CellTelemetry,
}

/// One cell's sim-plane telemetry: engine counters/histograms, kernel
/// event-lane statistics, task-slab recycle stats, and (when enabled)
/// the bounded event trace. All of it is a pure function of the
/// deterministic event sequence — identical for every
/// `execution.threads` value.
#[derive(Clone, Debug, Default)]
pub struct CellTelemetry {
    /// Engine placement/admission counters and queue-depth histograms.
    pub stats: EngineStats,
    /// Kernel event-queue lane statistics (wheel/heap/sorted routing and
    /// pops) for the cell's shard.
    pub lanes: LaneStats,
    /// Task-slab segments retired (drained and recycled).
    pub slab_retired: u64,
    /// Task-slab segments still resident at the end of the run.
    pub slab_resident: usize,
    /// The last-N delivered engine events, when the spec (or `--trace`)
    /// enabled tracing.
    pub trace: Option<TraceRing>,
    /// Fault-runtime counters and retry/reschedule histograms, when the
    /// cell ran a fault plane.
    pub faults: Option<FaultStats>,
    /// The causal flight recorder — per-task lifecycle spans with
    /// decision records — when `observability.spans` (or `--spans`)
    /// enabled it. Horizon-closed before harvest, so every span has an
    /// end time.
    pub spans: Option<SpanLog>,
}

/// An attached cell: its engine handle plus the autoscale stats sink
/// (when the scenario runs an autoscaler).
type AttachedCell<'a> = (CellHandle<'a>, Option<Rc<RefCell<AutoscaleStats>>>);

/// Attaches one cell — engine, arrival feed, cycle timer, and every
/// scenario component — to `sim`. With `spillover` the arrival feed is
/// the admit-or-spill [`SpilloverForwarder`](ctlm_sched::engine::SpilloverForwarder) (its `SpillRequest`s go to
/// the shard outbox); otherwise the plain arrival source.
#[allow(clippy::too_many_arguments)]
fn attach_full_cell<'a>(
    sim: &mut Sim<'a, SchedEvent>,
    spec: &ExperimentSpec,
    cell: &'a BuiltCell,
    simulator: &'a Simulator,
    scheduler: &'a mut dyn Scheduler,
    registry: &Option<ModelRegistry>,
    cluster: SchedCluster,
    spillover: bool,
) -> Result<AttachedCell<'a>, LabError> {
    let horizon = spec.sim.horizon;
    let handle = match &cell.arrivals {
        BuiltArrivals::Materialised(arrivals) => {
            if spillover {
                simulator.attach_cell_spillover(sim, &cell.name, cluster, arrivals, scheduler)
            } else {
                simulator.attach_cell(sim, &cell.name, cluster, arrivals, scheduler)
            }
        }
        BuiltArrivals::Streamed(w) => {
            let stream = SyntheticStream::new(
                w,
                &spec.sim,
                cell.index,
                cell.index as u64 * CELL_ID_STRIDE,
                spec.execution.arrival_chunk,
            )?;
            simulator.attach_cell_stream(
                sim,
                &cell.name,
                cluster,
                Box::new(stream),
                scheduler,
                spillover,
            )
        }
    };
    // The flight recorder is per-cell state behind the engine handle;
    // faults and the autoscaler share the same log so control-plane
    // decisions land next to the task lifecycle they explain.
    let spans = spec
        .observability
        .spans
        .then(|| handle.state().borrow_mut().enable_spans());
    // Churn and the autoscaler mutate the same fleet; the shared
    // guard keeps them off each other's machines.
    let guard = OwnershipGuard::new();
    if let Some(plan) = &cell.churn {
        let churn = ChurnSource::new(plan.clone(), handle.engine).with_guard(guard.clone());
        let first = churn.first_time();
        let id = sim.add_component(format!("{}/churn", cell.name), churn);
        if let Some(t) = first {
            sim.schedule_prio(t, PRIO_STATE, id, id, SchedEvent::Wake);
        }
    }
    // The fault plane shares the guard too: a crash override-claims the
    // machine, voiding any in-flight drain or provision claim.
    if let Some(bf) = &cell.faults {
        let retry = &bf.retry;
        let policy: Box<dyn RetryPolicy> = match retry.policy.as_str() {
            "fixed" => Box::new(FixedRetry {
                delay: retry.base,
                budget: retry.budget,
            }),
            _ => Box::new(ExponentialBackoff {
                base: retry.base,
                cap: retry.cap.max(retry.base),
                budget: retry.budget,
                jitter: retry.jitter,
            }),
        };
        handle.state().borrow_mut().enable_faults(
            policy,
            spec.sim.seed ^ (cell.index as u64).wrapping_mul(0x9E37_79B9),
        );
        let mut plane = FaultPlane::new(bf.plan.clone(), handle.engine).with_guard(guard.clone());
        if let Some(reg) = registry {
            plane = plane.with_registry(reg.clone());
        }
        if let Some(s) = &spans {
            plane = plane.with_spans(s.clone());
        }
        let first = plane.first_time();
        let id = sim.add_component(format!("{}/faults", cell.name), plane);
        if let Some(t) = first {
            sim.schedule_prio(t, PRIO_STATE, id, id, SchedEvent::Wake);
        }
    }
    let mut autoscale_stats = None;
    if let Some(auto) = &cell.autoscale {
        let policy =
            build_autoscale_policy(&auto.policy, &auto.params, &spec.sim, &auto.config.template)?;
        let (mut scaler, stats) =
            Autoscaler::new(auto.config.clone(), policy, handle.state(), guard);
        if let Some(s) = &spans {
            scaler = scaler.with_spans(s.clone());
        }
        let id = sim.add_component(format!("{}/autoscaler", cell.name), scaler);
        sim.schedule_prio(0, PRIO_STATE, id, id, SchedEvent::Wake);
        autoscale_stats = Some(stats);
    }
    if !cell.gangs.is_empty() {
        let gangs = GangSource::new(cell.gangs.clone(), handle.engine);
        let first = gangs.first_time();
        let id = sim.add_component(format!("{}/gangs", cell.name), gangs);
        if let Some(t) = first {
            sim.schedule_prio(t, PRIO_ADMIT, id, id, SchedEvent::Wake);
        }
    }
    if let Some((attr, stages)) = &cell.rollout {
        let rollout = RolloutSource::new(*attr, stages.clone(), handle.engine);
        let first = rollout.first_time();
        let id = sim.add_component(format!("{}/rollout", cell.name), rollout);
        if let Some(t) = first {
            sim.schedule_prio(t, PRIO_STATE, id, id, SchedEvent::Wake);
        }
    }
    // In-timeline retraining: only meaningful when the scheduler reads a
    // registry (`live_registry`); otherwise the cadence is inert.
    if let (Some(retrain), Some(registry)) = (&cell.retrain, registry) {
        let source = RetrainSource::new(
            cell,
            registry.clone(),
            train_config(&spec.train),
            retrain.period,
            horizon,
            spec.sim.seed,
        );
        let first = if retrain.start > 0 {
            retrain.start
        } else {
            retrain.period
        };
        let id = sim.add_component(format!("{}/retrain", cell.name), source);
        sim.schedule_prio(first, PRIO_STATE, id, id, SchedEvent::Wake);
    }
    Ok((handle, autoscale_stats))
}

/// Picks the cell a spill request lands in: home if it can admit the
/// task by now (capacity may have freed since the arrival instant),
/// otherwise the first feasible sibling (scanning forward, wrapping)
/// under [`SpilloverPolicy::FirstFeasible`], or the feasible sibling
/// with the lowest CPU utilisation (ties: lowest cell index) under
/// [`SpilloverPolicy::LeastLoaded`]. Tasks nobody can admit still go to
/// their home cell's queue.
fn route_spill(
    states: &[Rc<RefCell<EngineState<'_>>>],
    policy: SpilloverPolicy,
    home: usize,
    task: &PendingTask,
) -> usize {
    if states[home].borrow().can_admit(task) {
        return home;
    }
    match policy {
        SpilloverPolicy::LeastLoaded => {
            let mut best: Option<(f64, usize)> = None;
            for offset in 1..states.len() {
                let i = (home + offset) % states.len();
                let state = states[i].borrow();
                if state.can_admit(task) {
                    let key = (state.cluster.cpu_utilisation(), i);
                    if best.is_none_or(|(bl, bi)| key < (bl, bi)) {
                        best = Some(key);
                    }
                }
            }
            best.map(|(_, i)| i).unwrap_or(home)
        }
        _ => {
            for offset in 1..states.len() {
                let i = (home + offset) % states.len();
                if states[i].borrow().can_admit(task) {
                    return i;
                }
            }
            home
        }
    }
}

/// Runs the spec once under the named scheduler, returning per-cell
/// outcomes.
pub fn run_scheduler(
    spec: &ExperimentSpec,
    sched_name: &str,
    mode: ArrivalMode,
) -> Result<Vec<CellOutcome>, LabError> {
    run_scheduler_observed(spec, sched_name, mode).map(|(outcomes, _)| outcomes)
}

/// [`run_scheduler`], also returning the wall-clock shard profile when
/// the spec's `observability.profile` knob is on (multi-cell runs only —
/// single-timeline runs have no shards or barriers to time).
pub fn run_scheduler_observed(
    spec: &ExperimentSpec,
    sched_name: &str,
    mode: ArrivalMode,
) -> Result<(Vec<CellOutcome>, Option<ParallelPerf>), LabError> {
    let cell_specs = spec.cell_specs();
    let mut built: Vec<BuiltCell> = cell_specs
        .iter()
        .enumerate()
        .map(|(i, cs)| {
            // A cell streams only when nothing needs its full arrival
            // population up front: trace slices replay a list,
            // model-backed schedulers and the retraining scenario train
            // on it.
            let streaming = mode == ArrivalMode::Streaming
                && matches!(cs.workload, WorkloadSpec::Synthetic(_))
                && !matches!(sched_name, "enhanced" | "live_registry")
                && cs.scenario.retrain.is_none();
            build_cell(cs, &spec.sim, i, streaming)
        })
        .collect::<Result<_, _>>()?;
    let mut instances: Vec<SchedulerInstance> = built
        .iter()
        .map(|c| build_scheduler(sched_name, c, &spec.train, spec.sim.seed))
        .collect::<Result<_, _>>()?;
    let registries: Vec<Option<ModelRegistry>> =
        instances.iter().map(|i| i.registry.clone()).collect();
    let simulators: Vec<Simulator> = (0..built.len())
        .map(|_| {
            Ok(Simulator::new(spec.sim).with_placers(
                build_placer(&spec.placers.main, &spec.placers)?,
                build_placer(&spec.placers.hp, &spec.placers)?,
            ))
        })
        .collect::<Result<_, LabError>>()?;
    let clusters: Vec<SchedCluster> = built
        .iter_mut()
        .map(|c| std::mem::take(&mut c.cluster))
        .collect();
    let route_all = spec.spillover.enabled() && built.len() > 1;
    let horizon = spec.sim.horizon;

    let mut handles = Vec::with_capacity(built.len());
    let mut autoscale_stats: Vec<Option<Rc<RefCell<AutoscaleStats>>>> =
        Vec::with_capacity(built.len());
    let mut spills = vec![(0usize, 0usize); built.len()];
    let mut link_timeouts = vec![0u64; built.len()];
    let trace_capacity = spec.observability.trace_events;
    let mut lanes = vec![LaneStats::default(); built.len()];
    let mut perf: Option<ParallelPerf> = None;

    if built.len() == 1 {
        // Single cell: the classic one-timeline harness, no coordination.
        let mut sim: Sim<'_, SchedEvent> = Sim::new();
        for (((cell, simulator), instance), cluster) in built
            .iter()
            .zip(&simulators)
            .zip(instances.iter_mut())
            .zip(clusters)
        {
            let (handle, stats) = attach_full_cell(
                &mut sim,
                spec,
                cell,
                simulator,
                instance.scheduler.as_mut(),
                &registries[0],
                cluster,
                false,
            )?;
            handles.push(handle);
            autoscale_stats.push(stats);
        }
        if trace_capacity > 0 {
            handles[0].state().borrow_mut().enable_trace(trace_capacity);
        }
        sim.run_until(horizon);
        lanes[0] = sim.lane_stats();
        drop(sim);
    } else {
        // Multi-cell: one kernel shard per cell under the epoch-barrier
        // coordinator. Always — so `execution.threads` can never change
        // the simulated outcome, only the wall clock.
        let mut psim: ParallelSim<'_, SchedEvent> =
            ParallelSim::new(spec.execution.epoch_us.initial(), spec.execution.threads);
        if spec.execution.epoch_us.is_auto() {
            psim.set_autotune(EpochAutotune::default());
        }
        if spec.observability.profile {
            psim.enable_profiling();
        }
        for ((((cell, simulator), instance), registry), cluster) in built
            .iter()
            .zip(&simulators)
            .zip(instances.iter_mut())
            .zip(&registries)
            .zip(clusters)
        {
            let mut sim: Sim<'_, SchedEvent> = Sim::new();
            let (handle, stats) = attach_full_cell(
                &mut sim,
                spec,
                cell,
                simulator,
                instance.scheduler.as_mut(),
                registry,
                cluster,
                route_all,
            )?;
            psim.add_shard(sim);
            handles.push(handle);
            autoscale_stats.push(stats);
        }
        let engines: Vec<_> = handles.iter().map(|h| h.engine).collect();
        let states: Vec<_> = handles.iter().map(|h| h.state()).collect();
        if trace_capacity > 0 {
            for state in &states {
                state.borrow_mut().enable_trace(trace_capacity);
            }
        }
        let policy = spec.spillover;
        // Per-cell outbound link-outage windows from the fault plane —
        // pure spec data, so timeout decisions are thread-count-free.
        let outages: Vec<&[(Micros, Micros)]> = built
            .iter()
            .map(|c| {
                c.faults
                    .as_ref()
                    .map(|f| f.outages.as_slice())
                    .unwrap_or(&[])
            })
            .collect();
        psim.run_until(horizon, |bound, msgs, shards| {
            // Spill requests arrive merged in (time, priority, shard,
            // seq) order; injections below preserve it as queue order in
            // each target shard, so delivery is independent of how the
            // epoch's shards were scheduled onto workers.
            for msg in msgs {
                let SchedEvent::SpillRequest(idx) = msg.payload else {
                    continue;
                };
                let home = msg.shard;
                // A spill emitted inside one of its cell's link-outage
                // windows times out at the barrier: it never reaches a
                // sibling, bouncing back to the home queue once the
                // outage clears (re-admission behind the backlog).
                if let Some(&(_, end)) = outages[home]
                    .iter()
                    .find(|&&(s, e)| msg.time >= s && msg.time < e)
                {
                    link_timeouts[home] += 1;
                    let at = end.clamp(bound.min(horizon), horizon);
                    states[home].borrow_mut().span_spill_resolve(
                        idx,
                        at,
                        "link_timeout",
                        home as u64,
                    );
                    shards[home].schedule_prio(
                        at,
                        PRIO_ADMIT,
                        engines[home],
                        engines[home],
                        SchedEvent::Arrival(idx),
                    );
                    continue;
                }
                // The home engine resolves the index whether the task
                // lives in its materialised arena or its streaming slab.
                let target = {
                    let state = states[home].borrow();
                    route_spill(&states, policy, home, state.task(idx))
                };
                // Deliver at the barrier, never before the horizon guard:
                // near-horizon spills still get admitted so the engine
                // counts them placed-or-unplaced like any queued task.
                let at = bound.min(horizon);
                if target == home {
                    // Home admission stays an arena index — no clone.
                    states[home].borrow_mut().span_spill_resolve(
                        idx,
                        at,
                        "routed_home",
                        home as u64,
                    );
                    shards[home].schedule_prio(
                        at,
                        PRIO_ADMIT,
                        engines[home],
                        engines[home],
                        SchedEvent::Arrival(idx),
                    );
                } else {
                    spills[target].0 += 1;
                    spills[home].1 += 1;
                    let task = states[home].borrow().task(idx).clone();
                    // Resolve the transit span before the slot retires —
                    // the span needs the task id the slot still holds.
                    states[home]
                        .borrow_mut()
                        .span_spill_resolve(idx, at, "routed", target as u64);
                    // The clone is the task's new home; the slab slot
                    // (no-op for materialised cells) can retire.
                    states[home].borrow_mut().release_slot(idx);
                    shards[target].schedule_prio(
                        at,
                        PRIO_ADMIT,
                        engines[target],
                        engines[target],
                        SchedEvent::Admit(Box::new(task)),
                    );
                }
            }
        });
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = psim.shard(i).lane_stats();
        }
        perf = psim.perf().cloned();
        drop(psim);
    }

    let outcomes = handles
        .iter()
        .zip(built.iter())
        .enumerate()
        .map(|(i, (handle, cell))| {
            let (_, result) = handle.finish();
            // `finish` horizon-closed every open span; harvest the log
            // before the long immutable borrow below.
            let spans = handle.state().borrow_mut().take_spans();
            let state = handle.state();
            let state = state.borrow();
            let fstats = state.fault_stats().cloned();
            if let Some(fs) = &fstats {
                // Task conservation: every loss event scheduled a retry
                // or dead-lettered, and every dead-letter reached the
                // result's terminal counter — no silently hung tasks.
                assert_eq!(
                    fs.dead_lettered as usize, result.failed_permanently,
                    "cell {:?}: dead-letter stats and result disagree",
                    cell.name
                );
                assert!(
                    fs.retries_scheduled + fs.dead_lettered >= fs.tasks_lost,
                    "cell {:?}: lost tasks unaccounted for \
                     (lost {} > retried {} + dead-lettered {})",
                    cell.name,
                    fs.tasks_lost,
                    fs.retries_scheduled,
                    fs.dead_lettered
                );
            }
            let recovery = cell.faults.as_ref().map(|bf| {
                let fs = fstats.clone().unwrap_or_default();
                crate::report::RecoveryReport {
                    machines_crashed: fs.crashed_machines,
                    tasks_lost: fs.tasks_lost,
                    retries: fs.retries_scheduled,
                    dead_lettered: fs.dead_lettered,
                    lost_work_us: fs.lost_work_us,
                    reschedule_mean_us: (fs.reschedule.count() > 0)
                        .then(|| fs.reschedule.sum() as f64 / fs.reschedule.count() as f64),
                    link_timeouts: link_timeouts[i],
                    unavailable_machine_us: bf.downtime_us,
                }
            });
            let telemetry = CellTelemetry {
                stats: state.stats().clone(),
                lanes: lanes[i],
                slab_retired: state.slab_retired(),
                slab_resident: state.slab_resident_segments(),
                trace: state.trace().cloned(),
                faults: fstats,
                spans,
            };
            CellOutcome {
                cell: cell.name.clone(),
                result,
                spilled_in: spills[i].0,
                spilled_out: spills[i].1,
                autoscale: autoscale_stats[i].as_ref().map(|s| s.borrow().clone()),
                recovery,
                telemetry,
            }
        })
        .collect();
    Ok((outcomes, perf))
}

/// The online-retraining scenario component: every `period`, retrain on
/// the arrivals observed so far and hot-swap the result into the run's
/// [`ModelRegistry`] — the declarative form of the paper's
/// replay-retrain-schedule loop. Training happens synchronously on the
/// simulation timeline, so runs stay bit-deterministic.
/// One training row: `(arrival time, sparse CO-VV entries, label)`.
type LabeledRow = (Micros, Vec<(usize, f32)>, u8);

pub struct RetrainSource {
    /// Training rows sorted by arrival.
    rows: Vec<LabeledRow>,
    width: usize,
    vocab: ValueVocab,
    model: GrowingModel,
    registry: ModelRegistry,
    period: Micros,
    horizon: Micros,
    seed: u64,
    trained_upto: usize,
    ticks: u64,
}

impl RetrainSource {
    /// Builds the component from a cell's arrival population.
    pub fn new(
        cell: &BuiltCell,
        registry: ModelRegistry,
        config: TrainConfig,
        period: Micros,
        horizon: Micros,
        seed: u64,
    ) -> Self {
        let enc = CoVvEncoder;
        let mut rows: Vec<LabeledRow> = cell
            .arrivals
            .list()
            .expect("retraining cells materialise their arrivals")
            .iter()
            .map(|t| {
                (
                    t.arrival,
                    enc.encode_requirements(&t.reqs, &cell.vocab),
                    t.truth_group,
                )
            })
            .collect();
        rows.sort_by_key(|&(t, ..)| t);
        Self {
            rows,
            width: cell.vocab.len(),
            vocab: cell.vocab.clone(),
            model: GrowingModel::new(config),
            registry,
            period,
            horizon,
            seed,
            trained_upto: 0,
            ticks: 0,
        }
    }

    /// Number of models installed so far.
    pub fn installs(&self) -> u64 {
        self.ticks
    }
}

impl Component<SchedEvent> for RetrainSource {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        let seen = self.rows.partition_point(|&(t, ..)| t <= now);
        if seen >= RETRAIN_MIN_ROWS && seen > self.trained_upto {
            self.trained_upto = seen;
            let mut b = DatasetBuilder::new(self.width, NUM_GROUPS);
            for (_, row, label) in &self.rows[..seen] {
                b.push(row.iter().copied(), *label);
            }
            let ds = b.snapshot(self.width);
            self.model
                .step(&ds, self.seed ^ self.ticks.wrapping_mul(0x9E37_79B9));
            self.registry
                .install(TaskCoAnalyzer::new(self.model.to_net(), self.vocab.clone()));
            self.ticks += 1;
        }
        if now + self.period <= self.horizon {
            ctx.emit_self_prio(self.period, PRIO_STATE, SchedEvent::Wake);
        }
    }
}
