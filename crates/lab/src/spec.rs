//! The experiment spec: the JSON schema `ctlm-lab` turns into kernel
//! runs.
//!
//! A spec describes *what* to simulate — cluster topology, arrival
//! process, scenario intensities, scheduler/placer names, sweep grid —
//! and the builder ([`crate::build`]) plus executor ([`crate::sweep`])
//! turn it into assembled `ctlm-sim` runs. Every knob a spec exposes is
//! plain data, so identical specs produce identical reports and sweep
//! grids can rewrite any numeric field by path.
//!
//! The top level is either **single-cell** (a `workload` + `scenario`
//! at the root) or **multi-cell** (a `cells` array, each entry with its
//! own workload and scenario, optionally joined by the spillover
//! router). See `experiments/*.json` for complete examples.

use serde::{Deserialize, Serialize};

use ctlm_autoscale::{MachineTemplate, ProvisionDelay};
use ctlm_sched::SimConfig;
use ctlm_trace::{AttrId, CellSet, Micros};

use crate::LabError;

/// A complete experiment description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Experiment name (report header).
    pub name: String,
    /// Kernel parameters (cycle, attempts budget, runtimes, horizon,
    /// seed). Defaults to [`SimConfig::default`].
    #[serde(default)]
    pub sim: SimConfig,
    /// Scheduler registry names to A/B (e.g. `["main_only", "oracle"]`).
    /// Empty means `["main_only"]`.
    #[serde(default)]
    pub schedulers: Vec<String>,
    /// Placement strategies by registry name.
    #[serde(default)]
    pub placers: PlacerSpec,
    /// Single-cell sugar: the one cell's workload (mutually exclusive
    /// with `cells`).
    #[serde(default)]
    pub workload: Option<WorkloadSpec>,
    /// Single-cell sugar: the one cell's scenario.
    #[serde(default)]
    pub scenario: ScenarioSpec,
    /// Multi-cell topology: each cell has its own cluster and workload
    /// but all share one kernel timeline.
    #[serde(default)]
    pub cells: Vec<CellSpec>,
    /// Multi-cell only: route arrivals through the spillover router,
    /// which forwards tasks a cell cannot admit to a sibling cell.
    /// `"first_feasible"` forwards to the first feasible sibling,
    /// `"least_loaded"` scores feasible siblings by CPU utilisation and
    /// picks the emptiest; JSON `true`/`false` are accepted as legacy
    /// aliases for `"first_feasible"`/off.
    #[serde(default)]
    pub spillover: SpilloverPolicy,
    /// Training budget for model-backed schedulers (`enhanced`,
    /// `live_registry` retraining).
    #[serde(default)]
    pub train: TrainSpec,
    /// Parallel-execution knobs for multi-cell runs (thread count and
    /// epoch length). Ignored by single-cell specs, which run on one
    /// timeline. Results never depend on `threads`.
    #[serde(default)]
    pub execution: ExecutionSpec,
    /// Observability knobs: deterministic metrics collection, bounded
    /// event tracing, and wall-clock shard profiling. None of them ever
    /// changes the report body. Overridable with `ctlm-lab
    /// --metrics <path>` / `--trace`.
    #[serde(default)]
    pub observability: ObservabilitySpec,
    /// Optional sweep grid (knobs × seeds × repeats).
    #[serde(default)]
    pub sweep: Option<SweepSpec>,
}

impl ExperimentSpec {
    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, LabError> {
        let spec: Self = serde_json::from_str(text).map_err(LabError::from)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the spec back to JSON.
    pub fn to_json(&self) -> Result<String, LabError> {
        serde_json::to_string(self).map_err(LabError::from)
    }

    /// Structural sanity checks the type system cannot express.
    pub fn validate(&self) -> Result<(), LabError> {
        if self.cells.is_empty() && self.workload.is_none() {
            return Err(LabError::msg(
                "spec needs either a top-level `workload` or a `cells` array",
            ));
        }
        if !self.cells.is_empty() && self.workload.is_some() {
            return Err(LabError::msg(
                "`workload` and `cells` are mutually exclusive — move the workload into a cell",
            ));
        }
        if self.spillover.enabled() && self.cells.len() < 2 {
            return Err(LabError::msg("`spillover` needs at least two cells"));
        }
        if self.spillover.enabled() {
            // Synthetic cells stride their pin-attribute values so no
            // task can alias a sibling's machines; generated traces
            // share one attribute space, so a spilled constrained task
            // could silently match a look-alike machine elsewhere.
            for cell in &self.cells {
                if matches!(cell.workload, WorkloadSpec::Trace(_)) {
                    return Err(LabError::msg(format!(
                        "cell {:?}: spillover supports Synthetic workloads only \
                         (trace cells share an attribute space, so spilled \
                         constrained tasks would alias sibling machines)",
                        cell.name
                    )));
                }
            }
        }
        {
            let mut seen = std::collections::HashSet::new();
            for cell in &self.cells {
                if !seen.insert(cell.name.as_str()) {
                    return Err(LabError::msg(format!(
                        "duplicate cell name {:?} — summary rows are keyed by cell name",
                        cell.name
                    )));
                }
            }
        }
        for name in self.scheduler_names() {
            crate::registry::check_scheduler(&name)?;
        }
        crate::registry::check_placer(&self.placers.main)?;
        crate::registry::check_placer(&self.placers.hp)?;
        // Contradictory soft-affinity terms fail at parse time, not
        // mid-sweep.
        crate::registry::soft_requirements(&self.placers.soft)?;
        for cell in self.cell_specs() {
            let Some(auto) = &cell.scenario.autoscale else {
                continue;
            };
            crate::registry::check_autoscale_policy(&auto.policy)?;
            if auto.min > auto.max {
                return Err(LabError::msg(format!(
                    "cell {:?}: autoscale min {} exceeds max {}",
                    cell.name, auto.min, auto.max
                )));
            }
            if auto.cadence == 0 {
                return Err(LabError::msg(format!(
                    "cell {:?}: autoscale cadence must be > 0",
                    cell.name
                )));
            }
        }
        for cell in self.cell_specs() {
            let Some(faults) = &cell.scenario.faults else {
                continue;
            };
            if let Some(c) = &faults.crashes {
                if c.window.0 > c.window.1 {
                    return Err(LabError::msg(format!(
                        "cell {:?}: crash window start {} exceeds end {}",
                        cell.name, c.window.0, c.window.1
                    )));
                }
                if c.count > 0 && c.mttr == 0 {
                    return Err(LabError::msg(format!(
                        "cell {:?}: crash mttr must be > 0",
                        cell.name
                    )));
                }
            }
            if let Some(l) = &faults.link_outage {
                if l.duration == 0 {
                    return Err(LabError::msg(format!(
                        "cell {:?}: link_outage duration must be > 0",
                        cell.name
                    )));
                }
                if l.count > 1 && l.period == 0 {
                    return Err(LabError::msg(format!(
                        "cell {:?}: repeated link_outage needs period > 0",
                        cell.name
                    )));
                }
                if !self.spillover.enabled() {
                    return Err(LabError::msg(format!(
                        "cell {:?}: link_outage needs spillover enabled \
                         (there is no link to fail otherwise)",
                        cell.name
                    )));
                }
            }
            if let Some(d) = &faults.degraded_registry {
                if d.duration == 0 {
                    return Err(LabError::msg(format!(
                        "cell {:?}: degraded_registry duration must be > 0",
                        cell.name
                    )));
                }
            }
            match faults.retry.policy.as_str() {
                "fixed" | "exponential" => {}
                other => {
                    return Err(LabError::msg(format!(
                        "cell {:?}: unknown retry policy {other:?} \
                         (expected \"fixed\" or \"exponential\")",
                        cell.name
                    )))
                }
            }
            if faults.retry.base == 0 {
                return Err(LabError::msg(format!(
                    "cell {:?}: retry base delay must be > 0",
                    cell.name
                )));
            }
        }
        if self.execution.epoch_us == EpochSpec::Fixed(0) {
            return Err(LabError::msg(
                "`execution.epoch_us` must be > 0 (or \"auto\")",
            ));
        }
        if self.execution.arrival_chunk == 0 {
            return Err(LabError::msg("`execution.arrival_chunk` must be > 0"));
        }
        if let Some(sweep) = &self.sweep {
            for knob in &sweep.knobs {
                if knob.values.is_empty() {
                    return Err(LabError::msg(format!(
                        "sweep knob {:?} has no values",
                        knob.path
                    )));
                }
            }
        }
        Ok(())
    }

    /// The scheduler list with the empty-list default applied.
    pub fn scheduler_names(&self) -> Vec<String> {
        if self.schedulers.is_empty() {
            vec!["main_only".to_string()]
        } else {
            self.schedulers.clone()
        }
    }

    /// The normalized cell list: the `cells` array as-is, or the
    /// single-cell sugar wrapped into one `cell-0` entry.
    pub fn cell_specs(&self) -> Vec<CellSpec> {
        if self.cells.is_empty() {
            vec![CellSpec {
                name: "cell-0".to_string(),
                workload: self.workload.clone().expect("validated: workload present"),
                scenario: self.scenario.clone(),
            }]
        } else {
            self.cells.clone()
        }
    }
}

/// How (and whether) a multi-cell run forwards tasks a cell cannot
/// admit. See [`ExperimentSpec::spillover`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpilloverPolicy {
    /// No spillover: every task stays in its home cell's queue.
    #[default]
    Off,
    /// Forward to the first sibling (scanning forward from the home
    /// cell, wrapping) that can admit the task right now.
    FirstFeasible,
    /// Forward to the feasible sibling with the lowest CPU utilisation
    /// (ties: lowest cell index). The home cell still wins when it can
    /// admit the task itself.
    LeastLoaded,
}

impl SpilloverPolicy {
    /// True when the spillover router is active.
    pub fn enabled(self) -> bool {
        self != SpilloverPolicy::Off
    }

    /// The spec-facing name.
    pub fn name(self) -> &'static str {
        match self {
            SpilloverPolicy::Off => "off",
            SpilloverPolicy::FirstFeasible => "first_feasible",
            SpilloverPolicy::LeastLoaded => "least_loaded",
        }
    }
}

impl serde::Serialize for SpilloverPolicy {
    fn to_value(&self) -> serde_json::Value {
        match self {
            // Canonical off form stays the legacy `false` so normalized
            // documents round-trip with pre-knob specs.
            SpilloverPolicy::Off => serde_json::Value::Bool(false),
            other => serde_json::Value::Str(other.name().to_string()),
        }
    }
}

impl serde::Deserialize for SpilloverPolicy {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::Error> {
        match v {
            serde_json::Value::Bool(false) => Ok(SpilloverPolicy::Off),
            serde_json::Value::Bool(true) => Ok(SpilloverPolicy::FirstFeasible),
            serde_json::Value::Str(s) if s == "off" => Ok(SpilloverPolicy::Off),
            serde_json::Value::Str(s) if s == "first_feasible" => {
                Ok(SpilloverPolicy::FirstFeasible)
            }
            serde_json::Value::Str(s) if s == "least_loaded" => Ok(SpilloverPolicy::LeastLoaded),
            other => Err(serde::Error::msg(format!(
                "expected spillover policy (\"first_feasible\", \"least_loaded\", \
                 \"off\", or a legacy bool), got {other:?}"
            ))),
        }
    }
}

/// One cell of a (possibly multi-cell) experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Cell name (report key).
    pub name: String,
    /// The cell's cluster + arrival process.
    pub workload: WorkloadSpec,
    /// The cell's scenario components.
    #[serde(default)]
    pub scenario: ScenarioSpec,
}

/// Placement strategies for the two queues, by registry name.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlacerSpec {
    /// Main-queue strategy.
    pub main: String,
    /// High-priority-queue strategy.
    pub hp: String,
    /// Soft-affinity preferences for the `best_fit_soft` placer:
    /// machines satisfying more of these rank ahead, but none are
    /// excluded. Ignored by the other strategies, so a sweep can flip
    /// `main` between `best_fit` and `best_fit_soft` without touching
    /// this list.
    #[serde(default)]
    pub soft: Vec<SoftAffinitySpec>,
}

impl Default for PlacerSpec {
    fn default() -> Self {
        Self {
            main: "best_fit".to_string(),
            hp: "preemptive_best_fit".to_string(),
            soft: Vec::new(),
        }
    }
}

/// One soft-affinity preference: an attribute plus the predicate a
/// preferred machine satisfies (the spec-level form of a Kubernetes
/// `preferredDuringScheduling` term).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SoftAffinitySpec {
    /// Machine attribute the preference inspects.
    pub attr: AttrId,
    /// The predicate.
    pub op: SoftOpSpec,
}

/// Predicates a soft preference can express — the numeric/string subset
/// of the trace constraint operators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SoftOpSpec {
    /// Attribute equals this integer value.
    Equal(i64),
    /// Attribute equals this string value.
    EqualStr(String),
    /// Attribute present and `< value`.
    LessThan(i64),
    /// Attribute present and `> value`.
    GreaterThan(i64),
    /// Attribute present and `<= value`.
    LessThanEqual(i64),
    /// Attribute present and `>= value`.
    GreaterThanEqual(i64),
}

/// Where a cell's cluster and arrivals come from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A slice of a generated GCD-like trace (`ctlm-trace`): machines
    /// from the fleet events, tasks from submissions.
    Trace(TraceWorkload),
    /// A fully synthetic workload: explicit machine groups plus
    /// generated arrivals.
    Synthetic(SyntheticWorkload),
}

/// Replayed-trace workload parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceWorkload {
    /// Which calibrated cell profile to generate.
    pub cell: CellSet,
    /// Fleet size.
    pub machines: usize,
    /// Collections submitted over the trace horizon.
    pub collections: usize,
    /// Cap on admitted tasks (0 = all).
    #[serde(default)]
    pub max_tasks: usize,
    /// Compress arrivals onto this window (µs, 0 = off) — the loaded
    /// regime where head-of-line blocking matters.
    #[serde(default)]
    pub compress_to: Micros,
    /// Trace seed override (`null` → the spec's `sim.seed`).
    #[serde(default)]
    pub seed: Option<u64>,
}

/// Synthetic workload parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SyntheticWorkload {
    /// Machine groups; machines get attribute 0 = a cell-offset unique
    /// index so restrictive tasks pin to exactly one node fleet-wide
    /// (sibling cells never alias under spillover).
    pub machines: Vec<MachineGroup>,
    /// Number of unconstrained background tasks.
    pub tasks: usize,
    /// Inter-arrival process for the background tasks.
    pub arrival: ArrivalProcess,
    /// CPU request distribution.
    #[serde(default)]
    pub cpu: SizeDist,
    /// Memory request distribution.
    #[serde(default)]
    pub memory: SizeDist,
    /// Priority band for background tasks.
    #[serde(default)]
    pub priority: u8,
    /// Optional restrictive (single-suitable-node, Group-0) tasks.
    #[serde(default)]
    pub restrictive: Option<RestrictiveSpec>,
}

/// A homogeneous group of machines.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineGroup {
    /// Machines in the group.
    pub count: usize,
    /// Per-machine CPU capacity.
    pub cpu: f64,
    /// Per-machine memory capacity.
    pub memory: f64,
}

/// Inter-arrival gap processes (`ctlm-trace` provides the heavy-tailed
/// sampler).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Fixed gap between arrivals.
    Uniform {
        /// Gap (µs).
        gap: Micros,
    },
    /// Exponential (Poisson-process) gaps.
    Exponential {
        /// Mean gap (µs).
        mean_gap: Micros,
    },
    /// Bounded-Pareto gaps — bursty, heavy-tailed arrivals.
    Pareto {
        /// Minimum gap (µs).
        lo: f64,
        /// Maximum gap (µs).
        hi: f64,
        /// Tail exponent.
        alpha: f64,
    },
}

/// Resource-request distributions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every task requests exactly this much.
    Fixed(f64),
    /// Bounded-Pareto requests — "top 1 % of tasks consume over 99 % of
    /// resources".
    Pareto {
        /// Minimum request.
        lo: f64,
        /// Maximum request.
        hi: f64,
        /// Tail exponent.
        alpha: f64,
    },
}

impl Default for SizeDist {
    fn default() -> Self {
        SizeDist::Fixed(0.1)
    }
}

/// Restrictive tasks: pinned to one uniformly chosen machine each
/// (ground-truth Group 0) — the population the paper's analyzer exists
/// to protect.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RestrictiveSpec {
    /// How many restrictive tasks to submit.
    pub count: usize,
    /// First submission time (µs).
    pub start: Micros,
    /// Gap between submissions (µs).
    pub period: Micros,
    /// CPU/memory request per restrictive task.
    pub cpu: f64,
    /// Priority band.
    pub priority: u8,
}

/// Scenario components with intensities; every field is optional, and
/// all active components share the cell's timeline.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Machine churn: seeded random drain/restore waves.
    #[serde(default)]
    pub churn: Option<ChurnSpec>,
    /// All-or-nothing gang arrivals.
    #[serde(default)]
    pub gangs: Option<GangSpec>,
    /// A staged attribute rollout washing over the fleet.
    #[serde(default)]
    pub rollout: Option<RolloutSpec>,
    /// Online retraining cadence (drives the `live_registry` scheduler).
    #[serde(default)]
    pub retrain: Option<RetrainSpec>,
    /// Elastic fleet control: the `ctlm-autoscale` control plane
    /// watching this cell's signals. Multi-cell specs give each cell
    /// its own block, so cells autoscale independently (spillover
    /// included).
    #[serde(default)]
    pub autoscale: Option<AutoscaleSpec>,
    /// Fault-plane injection: abrupt correlated machine crashes (lost
    /// work, MTTR recovery), spillover link outages, registry
    /// degradation windows, and the retry policy deciding between
    /// rescheduling and dead-lettering lost tasks.
    #[serde(default)]
    pub faults: Option<FaultsSpec>,
}

/// One cell's autoscaler: policy selection by registry name plus the
/// fleet band, cadence, warm pool and provisioning behaviour.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleSpec {
    /// Policy registry name (`threshold`, `target_tracking`,
    /// `predictive`).
    pub policy: String,
    /// Fleet floor — scale-down never drains below this.
    pub min: usize,
    /// Fleet ceiling — scale-up never targets above this.
    pub max: usize,
    /// Evaluation cadence (µs).
    pub cadence: Micros,
    /// Warm-pool target: provisioned standby machines a scale-up can
    /// activate without paying the provisioning delay.
    #[serde(default)]
    pub warm_pool: usize,
    /// Provisioning-delay distribution (default: fixed 30 s).
    #[serde(default)]
    pub delay: ProvisionDelay,
    /// Shape of provisioned machines (`null` → the first machine
    /// group's shape for synthetic workloads, unit capacity for trace
    /// slices).
    #[serde(default)]
    pub template: Option<MachineTemplate>,
    /// Numeric policy parameters; unset fields take the policy's
    /// defaults. Every field is sweepable by dotted path.
    #[serde(default)]
    pub params: PolicyParams,
}

/// Optional numeric knobs for the autoscaling policies. Each policy
/// reads its own subset; unset fields fall back to the registry
/// defaults (documented per field).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyParams {
    /// `threshold`: queue pressure triggering a scale-up (default 8).
    #[serde(default)]
    pub up_pending: Option<u64>,
    /// `threshold`: recent mean admission latency (µs) triggering a
    /// scale-up regardless of queue depth (default: disabled).
    #[serde(default)]
    pub up_latency: Option<f64>,
    /// `threshold`: idle-fleet utilisation below which machines shed
    /// (default 0.3).
    #[serde(default)]
    pub down_util: Option<f64>,
    /// `threshold`: machines added/removed per decision (default 2).
    #[serde(default)]
    pub step: Option<u64>,
    /// `target_tracking`: the utilisation setpoint (default 0.6).
    #[serde(default)]
    pub target_util: Option<f64>,
    /// `target_tracking`: dead band around the setpoint (default 0.1).
    #[serde(default)]
    pub tolerance: Option<f64>,
    /// `predictive`: sliding-window length in evaluation periods
    /// (default 6).
    #[serde(default)]
    pub window: Option<u64>,
    /// `predictive`: capacity multiplier over the forecast
    /// (default 1.2).
    #[serde(default)]
    pub headroom: Option<f64>,
    /// `predictive`: estimated CPU request per task (default 0.25).
    #[serde(default)]
    pub task_cpu: Option<f64>,
}

/// Churn intensity: `failures` distinct machines drain inside `window`,
/// each returning `outage` µs later.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Number of distinct machines to fail.
    pub failures: usize,
    /// `[start, end]` of the failure window (µs).
    pub window: (Micros, Micros),
    /// Down time per machine (µs).
    pub outage: Micros,
    /// Extra seed entropy (combined with the spec's `sim.seed`).
    #[serde(default)]
    pub seed: u64,
}

/// Fault-plane intensities for one cell. Unlike [`ChurnSpec`]'s
/// graceful drains (running tasks requeue), crashes *lose* work: the
/// engine charges each lost task against the retry budget and either
/// reschedules it after a backoff delay or dead-letters it.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultsSpec {
    /// Correlated failure-domain crashes with seeded MTTR recovery.
    #[serde(default)]
    pub crashes: Option<CrashSpec>,
    /// Transient spillover link outages: windows during which this
    /// cell's outbound spill requests time out at the epoch barrier and
    /// bounce back to the home queue.
    #[serde(default)]
    pub link_outage: Option<LinkOutageSpec>,
    /// A degraded model-registry window: `live_registry` cells fall
    /// back to main-queue routing until the registry heals.
    #[serde(default)]
    pub degraded_registry: Option<DegradedRegistrySpec>,
    /// Retry policy for crash-lost tasks (default: exponential backoff,
    /// budget 3).
    #[serde(default)]
    pub retry: RetrySpec,
}

/// Correlated crash process: `count` crash events inside `window`, each
/// taking a whole failure domain (zone) down at once. Machines recover
/// after a seeded exponential outage with mean `mttr`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Number of crash events (each downs one whole zone).
    pub count: usize,
    /// `[start, end]` of the crash window (µs).
    pub window: (Micros, Micros),
    /// Mean time to recovery per crash (µs, exponential).
    pub mttr: Micros,
    /// Failure domains the fleet splits into (contiguous machine-id
    /// chunks); 0 = every machine is its own domain (uncorrelated).
    #[serde(default)]
    pub zones: usize,
    /// Extra seed entropy (combined with the spec's `sim.seed`).
    #[serde(default)]
    pub seed: u64,
}

/// Spillover link outage windows: `count` outages of `duration` µs,
/// starting at `start` and repeating every `period`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkOutageSpec {
    /// First outage start (µs).
    pub start: Micros,
    /// Length of each outage (µs).
    pub duration: Micros,
    /// Number of outage windows (0 or 1 → a single window).
    #[serde(default)]
    pub count: usize,
    /// Gap between successive window *starts* (µs); required when
    /// `count > 1`.
    #[serde(default)]
    pub period: Micros,
}

/// A degraded model-registry window: the registry reports unhealthy
/// from `start` for `duration` µs, then heals.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegradedRegistrySpec {
    /// Degradation start (µs).
    pub start: Micros,
    /// Degradation length (µs).
    pub duration: Micros,
}

/// Retry policy for crash-lost tasks. `fixed` waits `base` µs between
/// attempts; `exponential` doubles from `base` up to `cap` with seeded
/// jitter. A task exceeding `budget` attempts dead-letters
/// (`failed_permanently` in the report — never a silently hung task).
#[derive(Clone, Debug, PartialEq)]
pub struct RetrySpec {
    /// Policy name: `fixed` or `exponential`.
    pub policy: String,
    /// Base delay (µs): the fixed delay, or the exponential first step.
    pub base: Micros,
    /// Delay ceiling for `exponential` (µs).
    pub cap: Micros,
    /// Retry attempts before dead-lettering.
    pub budget: u32,
    /// `exponential` jitter fraction: each delay is scaled by a seeded
    /// uniform factor in `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetrySpec {
    fn default() -> Self {
        Self {
            policy: "exponential".to_string(),
            base: 2_000_000,
            cap: 60_000_000,
            budget: 3,
            jitter: 0.5,
        }
    }
}

impl serde::Serialize for RetrySpec {
    fn to_value(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            (
                "policy".to_string(),
                serde_json::Value::Str(self.policy.clone()),
            ),
            ("base".to_string(), serde_json::Value::Num(self.base as f64)),
            ("cap".to_string(), serde_json::Value::Num(self.cap as f64)),
            (
                "budget".to_string(),
                serde_json::Value::Num(self.budget as f64),
            ),
            ("jitter".to_string(), serde_json::Value::Num(self.jitter)),
        ])
    }
}

// Manual impl so a partial `retry` object keeps the struct defaults for
// the fields it omits (mirrors [`ExecutionSpec`]).
impl serde::Deserialize for RetrySpec {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::Error> {
        let serde_json::Value::Object(fields) = v else {
            return Err(serde::Error::msg(format!(
                "expected retry object, got {v:?}"
            )));
        };
        let mut out = RetrySpec::default();
        for (key, val) in fields {
            match key.as_str() {
                "policy" => out.policy = serde::Deserialize::from_value(val)?,
                "base" => out.base = serde::Deserialize::from_value(val)?,
                "cap" => out.cap = serde::Deserialize::from_value(val)?,
                "budget" => out.budget = serde::Deserialize::from_value(val)?,
                "jitter" => out.jitter = serde::Deserialize::from_value(val)?,
                other => return Err(serde::Error::msg(format!("unknown retry field {other:?}"))),
            }
        }
        Ok(out)
    }
}

/// Gang arrival process: `count` gangs of `size` members each.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GangSpec {
    /// Number of gangs.
    pub count: usize,
    /// Members per gang.
    pub size: usize,
    /// First gang arrival (µs).
    pub start: Micros,
    /// Gap between gangs (µs).
    pub period: Micros,
    /// CPU/memory request per member.
    pub cpu: f64,
    /// Priority band for members.
    #[serde(default)]
    pub priority: u8,
}

/// Staged attribute rollout: the fleet is split into `stages` equal
/// chunks, upgraded one chunk per `period`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RolloutSpec {
    /// Attribute being rolled out.
    pub attr: AttrId,
    /// The integer value every upgraded machine reports.
    pub value: i64,
    /// Number of stages.
    pub stages: usize,
    /// First stage time (µs).
    pub start: Micros,
    /// Gap between stages (µs).
    pub period: Micros,
}

/// Online retraining cadence: every `period`, retrain on the arrivals
/// observed so far and hot-swap the result into the run's
/// [`ModelRegistry`](ctlm_core::ModelRegistry).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetrainSpec {
    /// Retraining period (µs).
    pub period: Micros,
    /// First retraining tick (µs, 0 = one period in).
    #[serde(default)]
    pub start: Micros,
}

/// Training budget for model-backed schedulers. Deliberately far below
/// the paper's full budget — specs train on their own (small) arrival
/// populations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainSpec {
    /// Epoch cap per training attempt.
    pub epochs_limit: usize,
    /// Attempt cap.
    pub max_attempts: usize,
}

impl Default for TrainSpec {
    fn default() -> Self {
        Self {
            epochs_limit: 40,
            max_attempts: 2,
        }
    }
}

/// Parallel-execution knobs for multi-cell runs. Multi-cell specs
/// always run the epoch-sharded semantics — one kernel shard per cell,
/// synchronised at epoch barriers — so these knobs tune *wall-clock*
/// behaviour only; for a fixed (spec, seed, `epoch_us`), reports are
/// bit-identical for every `threads` value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutionSpec {
    /// Worker threads for shard execution: 0 = the rayon pool's
    /// configured width, 1 = sequential (no pool dispatch), n = chunk
    /// the cells over n workers. Overridable with `ctlm-lab --threads`.
    pub threads: usize,
    /// Epoch barrier length (µs), or `"auto"` for density-based
    /// autotuning. Cross-cell spillover crosses shards only at epoch
    /// boundaries, so this bounds the extra queueing delay a spilled
    /// task observes; shorter epochs mean more barriers.
    pub epoch_us: EpochSpec,
    /// Tasks per streamed arrival chunk. Streamed cells decode this many
    /// tasks ahead of the simulation clock at a time, so it bounds the
    /// per-cell arena footprint (chunk + in-flight tasks). Never changes
    /// results — only memory/refill-frequency trade-off.
    pub arrival_chunk: usize,
}

/// The epoch-length knob: a fixed barrier length, or `"auto"` to let the
/// coordinator adapt it to observed per-round event density (sparse
/// fleets get long epochs, dense bursts short ones). Autotuning keys off
/// delivered-event counts — simulation state only — so tuned runs stay
/// bit-identical for every `threads` value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochSpec {
    /// A fixed epoch length (µs).
    Fixed(Micros),
    /// Adapt the epoch per round from event density, starting from the
    /// default length.
    Auto,
}

impl EpochSpec {
    /// The starting epoch length (µs): the fixed value, or the default
    /// length as the autotuner's initial guess.
    pub fn initial(self) -> Micros {
        match self {
            EpochSpec::Fixed(us) => us,
            EpochSpec::Auto => 1_000_000,
        }
    }

    /// True when the coordinator should autotune the epoch.
    pub fn is_auto(self) -> bool {
        self == EpochSpec::Auto
    }
}

impl serde::Serialize for ExecutionSpec {
    fn to_value(&self) -> serde_json::Value {
        let epoch = match self.epoch_us {
            EpochSpec::Fixed(us) => serde_json::Value::Num(us as f64),
            EpochSpec::Auto => serde_json::Value::Str("auto".to_string()),
        };
        serde_json::Value::Object(vec![
            (
                "threads".to_string(),
                serde_json::Value::Num(self.threads as f64),
            ),
            ("epoch_us".to_string(), epoch),
            (
                "arrival_chunk".to_string(),
                serde_json::Value::Num(self.arrival_chunk as f64),
            ),
        ])
    }
}

// Manual impl so a partial `execution` object keeps the struct defaults
// for the fields it omits (the derive would fall back to the field
// type's zero).
impl serde::Deserialize for ExecutionSpec {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::Error> {
        let serde_json::Value::Object(fields) = v else {
            return Err(serde::Error::msg(format!(
                "expected execution object, got {v:?}"
            )));
        };
        let mut out = ExecutionSpec::default();
        for (key, val) in fields {
            match key.as_str() {
                "threads" => out.threads = serde::Deserialize::from_value(val)?,
                "epoch_us" => {
                    out.epoch_us = match val {
                        serde_json::Value::Str(s) if s == "auto" => EpochSpec::Auto,
                        other => EpochSpec::Fixed(serde::Deserialize::from_value(other)?),
                    }
                }
                "arrival_chunk" => out.arrival_chunk = serde::Deserialize::from_value(val)?,
                other => {
                    return Err(serde::Error::msg(format!(
                        "unknown execution field {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }
}

impl Default for ExecutionSpec {
    fn default() -> Self {
        Self {
            threads: 1,
            epoch_us: EpochSpec::Fixed(1_000_000), // one barrier per simulated second
            arrival_chunk: 8_192,
        }
    }
}

/// Observability knobs. Two strictly separated planes:
///
/// * the **sim plane** (`metrics`, `trace_events`, `spans`) reads simulation
///   state only — counters, histograms and event traces are pure
///   functions of the deterministic event sequence, so their JSON
///   export is byte-identical for every `execution.threads` value and
///   collecting them never changes the report body;
/// * the **host plane** (`profile`) reads the wall clock — per-shard
///   run/barrier/drain timings land exclusively in the report's
///   `_meta._perf` block, which `--no-meta` (and byte-compares) drop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObservabilitySpec {
    /// Collect the deterministic metrics registry (engine counters,
    /// queue-depth histograms, kernel lane stats, slab recycle stats,
    /// autoscale lifecycle counters). The `ctlm-lab --metrics <path>`
    /// flag switches this on and writes the registry as JSON.
    pub metrics: bool,
    /// Per-cell bounded event-trace capacity (last-N delivered engine
    /// events); 0 disables tracing. The ring preallocates and
    /// overwrites in place, so tracing keeps the zero-allocation pass
    /// contract. `ctlm-lab --trace` enables it at a default capacity.
    pub trace_events: usize,
    /// Profile multi-cell runs on the wall clock: per-shard `run_before`
    /// time, derived barrier wait, and coordinator outbox-drain time per
    /// epoch round. Host-dependent — emitted only into `_meta._perf`.
    pub profile: bool,
    /// Record the causal flight recorder: per-task lifecycle spans
    /// (queued/running/retry_wait/spill_transit/dead_letter), machine
    /// down/drain windows, and control-plane decision spans, each
    /// carrying the decision record that produced it. Sim-plane —
    /// recorded at lifecycle transitions only (no per-event cost), into
    /// a recycling segment arena, and exported solely through
    /// `ctlm-lab --spans <path>` (report bytes never change). The
    /// `--spans` flag switches this on.
    pub spans: bool,
}

impl serde::Serialize for ObservabilitySpec {
    fn to_value(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("metrics".to_string(), serde_json::Value::Bool(self.metrics)),
            (
                "trace_events".to_string(),
                serde_json::Value::Num(self.trace_events as f64),
            ),
            ("profile".to_string(), serde_json::Value::Bool(self.profile)),
            ("spans".to_string(), serde_json::Value::Bool(self.spans)),
        ])
    }
}

// Manual impl so a partial `observability` object keeps the struct
// defaults for the fields it omits (mirrors [`ExecutionSpec`]).
impl serde::Deserialize for ObservabilitySpec {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::Error> {
        let serde_json::Value::Object(fields) = v else {
            return Err(serde::Error::msg(format!(
                "expected observability object, got {v:?}"
            )));
        };
        let mut out = ObservabilitySpec::default();
        for (key, val) in fields {
            match key.as_str() {
                "metrics" => out.metrics = serde::Deserialize::from_value(val)?,
                "trace_events" => out.trace_events = serde::Deserialize::from_value(val)?,
                "profile" => out.profile = serde::Deserialize::from_value(val)?,
                "spans" => out.spans = serde::Deserialize::from_value(val)?,
                other => {
                    return Err(serde::Error::msg(format!(
                        "unknown observability field {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// A sweep grid: the cartesian product of every knob's values, crossed
/// with `seeds` × `repeats`. Runs execute in parallel on the rayon
/// pool; the report carries per-point medians.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Numeric knobs, addressed by dotted path into the spec document
    /// (e.g. `"scenario.churn.failures"`, `"cells.0.workload.Synthetic.tasks"`).
    #[serde(default)]
    pub knobs: Vec<KnobSpec>,
    /// Seeds to run each grid point under (empty → the spec's
    /// `sim.seed`).
    #[serde(default)]
    pub seeds: Vec<u64>,
    /// Repeats per (point, seed); repeat `k` runs under `seed + k`
    /// (0 → 1).
    #[serde(default)]
    pub repeats: usize,
}

/// One sweep dimension.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KnobSpec {
    /// Dotted path to a numeric field in the spec document.
    pub path: String,
    /// The values to sweep.
    pub values: Vec<f64>,
}
