//! Flight-recorder export and narration: the span logs as a
//! Chrome/Perfetto trace-event document, and the `explain` views that
//! turn one back into a causal story.
//!
//! # Export layout
//!
//! [`trace_document`] renders [`Observations::spans`] as standard
//! trace-event JSON (`chrome://tracing`, [ui.perfetto.dev]): one
//! *process* pair per `scheduler.cell` track in stored (deterministic)
//! order — pid `2i+1` carries the task lifecycle spans (one thread per
//! task id), pid `2i+2` the control plane (machine availability windows
//! plus autoscaler/fault decision instants). Every complete (`"X"`)
//! event's `args` is the span's decision record: cause, outcome, plan,
//! detail, attempts, and the kind-specific payload under a named key
//! (`machine`, `candidates`, `delay_us`, `target_cell`, …). Flow arrows
//! (`"s"`/`"f"`) stitch cross-cell spill hops (transit span → the
//! sibling cell's `queued` span) and crash retries (`retry_wait` → the
//! re-admission `queued` span), so the crash → backoff → requeue →
//! placement chain reads as one connected path in the UI.
//!
//! Everything above is sim-plane state: the document is byte-identical
//! for every `execution.threads` value. When the run profiled
//! (`_meta` kept) a **host-plane** `_perf` process group is appended —
//! per-shard wall-clock `run_before` slices anchored at each epoch
//! round's sim-time bound (ts is sim µs, dur is wall µs) — and
//! `--no-meta` drops it, which is what the CI byte-compare relies on.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev
//!
//! # Explain
//!
//! [`parse_trace`] reads a written document back (surviving the JSON
//! round trip is pinned by tests); [`explain_task`],
//! [`explain_machine`] and [`explain_worst`] render chronological
//! narratives from it — the flight recorder's answer to "why was task N
//! late" without opening a trace UI.

use std::collections::HashMap;

use ctlm_sim::ParallelPerf;
use ctlm_telemetry::{SpanRecord, SCHEMA_VERSION};
use serde_json::Value;

use crate::observe::Observations;
use crate::LabError;

/// Suffix of the task-plane process name for a cell track.
const TASKS_SUFFIX: &str = " tasks";
/// Suffix of the control-plane process name for a cell track.
const CTRL_SUFFIX: &str = " control";
/// Process-name prefix of the host-plane `_perf` track group.
const PERF_PREFIX: &str = "_perf ";

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

fn st(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A `"M"` metadata event naming a process or (with `tid`) a thread.
fn meta_event(pid: u64, tid: Option<u64>, which: &str, name: &str) -> Value {
    let mut fields = vec![("name", st(which)), ("ph", st("M")), ("pid", num(pid))];
    if let Some(t) = tid {
        fields.push(("tid", num(t)));
    }
    fields.push(("args", obj(vec![("name", st(name))])));
    obj(fields)
}

/// The kind-specific payload words under their named keys — the half of
/// the decision record that is not a static tag.
fn payload_args(r: &SpanRecord) -> Vec<(&'static str, Value)> {
    match r.kind {
        "queued" | "running" => {
            let mut out = Vec::new();
            if r.a != 0 || r.outcome == "placed" {
                out.push(("machine", num(r.a)));
            }
            // A preemption close overwrites the candidate word with the
            // task that evicted this one.
            if r.outcome == "preempted" {
                out.push(("preemptor", num(r.b)));
            } else if r.b != 0 {
                out.push(("candidates", num(r.b)));
            }
            out
        }
        "retry_wait" => vec![("delay_us", num(r.a)), ("crashed_machine", num(r.b))],
        "spill_transit" => vec![("target_cell", num(r.a))],
        "dead_letter" => vec![("machine", num(r.a))],
        "scale_up" => vec![("ordered", num(r.a)), ("crash_replacements", num(r.b))],
        "scale_down" => vec![("released", num(r.a))],
        _ => {
            let mut out = Vec::new();
            if r.a != 0 {
                out.push(("a", num(r.a)));
            }
            if r.b != 0 {
                out.push(("b", num(r.b)));
            }
            out
        }
    }
}

/// One span as a complete (`"X"`) trace event.
fn span_event(r: &SpanRecord, pid: u64, tid: u64) -> Value {
    let mut args = vec![("subject", num(r.subject)), ("cause", st(r.cause))];
    if !r.outcome.is_empty() {
        args.push(("outcome", st(r.outcome)));
    }
    if !r.plan.is_empty() {
        args.push(("plan", st(r.plan)));
    }
    if !r.detail.is_empty() {
        args.push(("detail", st(r.detail)));
    }
    if r.attempts > 0 {
        args.push(("attempts", num(r.attempts)));
    }
    args.extend(payload_args(r));
    obj(vec![
        ("name", st(r.kind)),
        ("cat", st(r.group)),
        ("ph", st("X")),
        ("pid", num(pid)),
        ("tid", num(tid)),
        ("ts", num(r.start)),
        ("dur", num(r.end - r.start)),
        ("args", obj(args)),
    ])
}

/// A flow step (`"s"` start or `"f"` finish-with-enclosing-binding).
fn flow_event(name: &str, ph: &str, id: u64, pid: u64, tid: u64, ts: u64) -> Value {
    let mut fields = vec![
        ("name", st(name)),
        ("cat", st("causal")),
        ("ph", st(ph)),
        ("id", num(id)),
        ("pid", num(pid)),
        ("tid", num(tid)),
        ("ts", num(ts)),
    ];
    if ph == "f" {
        fields.push(("bp", st("e")));
    }
    obj(fields)
}

/// Thread id of a record inside its cell's process pair. Task spans get
/// a thread per task id on the tasks pid; control-plane records share
/// the control pid — tid 0 for decision instants, `machine id + 1` for
/// availability windows.
fn record_tid(r: &SpanRecord) -> u64 {
    match r.group {
        "machine" => r.subject + 1,
        "ctrl" => 0,
        _ => r.subject,
    }
}

/// Per-track index of `queued` spans by subject, for flow-arrow
/// targets.
fn queued_index(records: &[&SpanRecord]) -> HashMap<u64, Vec<SpanRecord>> {
    let mut by_subject: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    for r in records {
        if r.kind == "queued" {
            by_subject.entry(r.subject).or_default().push(**r);
        }
    }
    by_subject
}

/// Renders the accumulated span logs (and, with `include_host`, the
/// per-round shard profile) as a Chrome/Perfetto trace-event document.
pub fn trace_document(obs: &Observations, include_host: bool) -> Value {
    let tracks: Vec<(&str, Vec<&SpanRecord>)> = obs
        .spans
        .iter()
        .map(|(key, log)| (key.as_str(), log.records().collect()))
        .collect();
    // Cell index within each scheduler follows track appearance order
    // (record_run folds cells in spec order) — the same numbering the
    // spill router's `target_cell` payload uses.
    let mut sched_cells: Vec<(&str, Vec<usize>)> = Vec::new();
    for (i, (key, _)) in tracks.iter().enumerate() {
        let sched = key.split('.').next().unwrap_or(key);
        match sched_cells.iter_mut().find(|(s, _)| *s == sched) {
            Some((_, cells)) => cells.push(i),
            None => sched_cells.push((sched, vec![i])),
        }
    }
    let queued: Vec<HashMap<u64, Vec<SpanRecord>>> =
        tracks.iter().map(|(_, rs)| queued_index(rs)).collect();
    let track_of = |from_track: usize, cell_idx: usize| -> Option<usize> {
        sched_cells
            .iter()
            .find(|(_, cells)| cells.contains(&from_track))
            .and_then(|(_, cells)| cells.get(cell_idx).copied())
    };

    let mut events = Vec::new();
    for (i, (key, records)) in tracks.iter().enumerate() {
        let (pid_tasks, pid_ctrl) = (2 * i as u64 + 1, 2 * i as u64 + 2);
        events.push(meta_event(
            pid_tasks,
            None,
            "process_name",
            &format!("{key}{TASKS_SUFFIX}"),
        ));
        events.push(meta_event(
            pid_ctrl,
            None,
            "process_name",
            &format!("{key}{CTRL_SUFFIX}"),
        ));
        events.push(meta_event(pid_ctrl, Some(0), "thread_name", "decisions"));
        let mut named_machines: Vec<u64> = Vec::new();
        for r in records {
            let (pid, tid) = match r.group {
                "task" => (pid_tasks, record_tid(r)),
                _ => (pid_ctrl, record_tid(r)),
            };
            if r.group == "machine" && !named_machines.contains(&r.subject) {
                named_machines.push(r.subject);
                events.push(meta_event(
                    pid_ctrl,
                    Some(tid),
                    "thread_name",
                    &format!("machine {}", r.subject),
                ));
            }
            events.push(span_event(r, pid, tid));
            // Flow arrows. Spill: the transit span in the home cell
            // connects to the `queued` span its re-admission opened —
            // in the sibling for a routed hop, at home for a bounce.
            if r.kind == "spill_transit" && matches!(r.outcome, "routed" | "routed_home") {
                let target_track = if r.outcome == "routed" {
                    track_of(i, r.a as usize)
                } else {
                    Some(i)
                };
                if let Some(t) = target_track {
                    // The re-admission is the first queued span at or
                    // after the hop resolved (the original arrival's
                    // queued span, if any, predates the transit).
                    let landed = queued[t]
                        .get(&r.subject)
                        .and_then(|spans| spans.iter().find(|q| q.start >= r.end));
                    if let Some(q) = landed {
                        let flow = r.subject * 2;
                        events.push(flow_event("spill", "s", flow, pid, tid, r.end));
                        events.push(flow_event(
                            "spill",
                            "f",
                            flow,
                            2 * t as u64 + 1,
                            q.subject,
                            q.start,
                        ));
                    }
                }
            }
            // Retry: backoff elapsing re-queues on the same track.
            if r.kind == "retry_wait" && r.outcome == "backoff_elapsed" {
                let landed = queued[i].get(&r.subject).and_then(|spans| {
                    spans
                        .iter()
                        .find(|q| q.cause == "retry" && q.start >= r.end)
                });
                if let Some(q) = landed {
                    let flow = r.subject * 2 + 1;
                    events.push(flow_event("retry", "s", flow, pid, tid, r.end));
                    events.push(flow_event("retry", "f", flow, pid, q.subject, q.start));
                }
            }
        }
    }

    if include_host {
        let base = 2 * tracks.len() as u64 + 1;
        for (j, (sched, perf)) in obs.host_rounds.iter().enumerate() {
            events.extend(host_track(base + j as u64, sched, perf));
        }
    }

    Value::Object(vec![
        ("schema_version".to_string(), num(SCHEMA_VERSION)),
        ("displayTimeUnit".to_string(), st("ms")),
        ("traceEvents".to_string(), Value::Array(events)),
    ])
}

/// The host-plane `_perf` process for one scheduler run: per shard, one
/// slice per epoch round, anchored at the round's sim-time bound with
/// the shard's wall-clock `run_before` time as duration.
fn host_track(pid: u64, sched: &str, perf: &ParallelPerf) -> Vec<Value> {
    let shards = perf.shard_run_ns.len();
    let mut events = vec![meta_event(
        pid,
        None,
        "process_name",
        &format!("{PERF_PREFIX}{sched}"),
    )];
    for s in 0..shards {
        events.push(meta_event(
            pid,
            Some(s as u64),
            "thread_name",
            &format!("shard {s}"),
        ));
    }
    if perf.round_shard_run_ns.len() != perf.round_bounds.len() * shards {
        return events; // merged/partial profile: totals only, no rounds
    }
    for (r, &bound) in perf.round_bounds.iter().enumerate() {
        for s in 0..shards {
            let run_ns = perf.round_shard_run_ns[r * shards + s];
            events.push(obj(vec![
                ("name", st("round")),
                ("cat", st("host")),
                ("ph", st("X")),
                ("pid", num(pid)),
                ("tid", num(s as u64)),
                ("ts", num(bound)),
                ("dur", num(run_ns / 1_000)),
                (
                    "args",
                    obj(vec![("round", num(r as u64)), ("run_ns", num(run_ns))]),
                ),
            ]));
        }
    }
    events
}

/// One span read back from a trace-event document.
#[derive(Clone, Debug)]
pub struct ExplainSpan {
    /// `scheduler.cell` track key.
    pub cell: String,
    /// `"task"`, `"machine"`, or `"ctrl"`.
    pub group: String,
    /// Span kind.
    pub kind: String,
    /// Task/machine/actor id.
    pub subject: u64,
    /// Open time (sim µs).
    pub start: u64,
    /// Close time (sim µs).
    pub end: u64,
    /// Decision record: open cause.
    pub cause: String,
    /// Decision record: close outcome.
    pub outcome: String,
    /// Decision record: plan name.
    pub plan: String,
    /// Decision record: plan detail.
    pub detail: String,
    /// Attempts burned.
    pub attempts: u64,
    /// Remaining named numeric payload (`machine`, `candidates`, …).
    pub payload: Vec<(String, u64)>,
}

/// A parsed flight recording.
#[derive(Clone, Debug)]
pub struct FlightRecording {
    /// The document's `schema_version` stamp (0 when missing).
    pub schema_version: u64,
    /// Every sim-plane span, in document order.
    pub spans: Vec<ExplainSpan>,
}

/// Parses a trace-event document written by [`trace_document`] back
/// into spans (host `_perf` slices are skipped — they are wall-clock).
pub fn parse_trace(doc: &Value) -> Result<FlightRecording, LabError> {
    let schema_version = doc.get_field("schema_version").as_f64().unwrap_or(0.0) as u64;
    let Value::Array(events) = doc.get_field("traceEvents") else {
        return Err(LabError::msg("spans file has no traceEvents array"));
    };
    // First pass: pid → cell key from process_name metadata.
    let mut cells: HashMap<u64, String> = HashMap::new();
    for ev in events {
        if ev.get_field("ph") == "M" && ev.get_field("name") == "process_name" {
            let Some(pid) = ev.get_field("pid").as_f64() else {
                continue;
            };
            let Some(pname) = ev.get_field("args").get_field("name").as_str() else {
                continue;
            };
            let key = pname
                .strip_suffix(TASKS_SUFFIX)
                .or_else(|| pname.strip_suffix(CTRL_SUFFIX));
            if let Some(key) = key {
                cells.insert(pid as u64, key.to_string());
            }
        }
    }
    let mut spans = Vec::new();
    for ev in events {
        if ev.get_field("ph") != "X" || ev.get_field("cat") == "host" {
            continue;
        }
        let pid = ev.get_field("pid").as_f64().unwrap_or(0.0) as u64;
        let Some(cell) = cells.get(&pid) else {
            continue;
        };
        let args = ev.get_field("args");
        let gets = |k: &str| args.get_field(k).as_str().unwrap_or("").to_string();
        let ts = ev.get_field("ts").as_f64().unwrap_or(0.0) as u64;
        let dur = ev.get_field("dur").as_f64().unwrap_or(0.0) as u64;
        let mut payload = Vec::new();
        if let Value::Object(pairs) = args {
            for (k, v) in pairs {
                if matches!(
                    k.as_str(),
                    "subject" | "cause" | "outcome" | "plan" | "detail" | "attempts"
                ) {
                    continue;
                }
                if let Some(n) = v.as_f64() {
                    payload.push((k.clone(), n as u64));
                }
            }
        }
        spans.push(ExplainSpan {
            cell: cell.clone(),
            group: ev.get_field("cat").as_str().unwrap_or("").to_string(),
            kind: ev.get_field("name").as_str().unwrap_or("").to_string(),
            subject: args.get_field("subject").as_f64().unwrap_or(0.0) as u64,
            start: ts,
            end: ts + dur,
            cause: gets("cause"),
            outcome: gets("outcome"),
            plan: gets("plan"),
            detail: gets("detail"),
            attempts: args.get_field("attempts").as_f64().unwrap_or(0.0) as u64,
            payload,
        })
    }
    Ok(FlightRecording {
        schema_version,
        spans,
    })
}

/// Sim µs as a human-readable offset.
fn fmt_us(us: u64) -> String {
    format!("{:.3}ms", us as f64 / 1_000.0)
}

/// One narrative line for a span.
fn narrate(s: &ExplainSpan, with_cell: bool) -> String {
    let mut line = format!("  +{:>12} ", fmt_us(s.start));
    if with_cell {
        line.push_str(&format!("[{}] ", s.cell));
    }
    line.push_str(&format!("{:<13}", s.kind));
    line.push_str(&format!(" cause={}", s.cause));
    if !s.outcome.is_empty() {
        line.push_str(&format!(" outcome={}", s.outcome));
    }
    if !s.plan.is_empty() {
        line.push_str(&format!(" plan={}", s.plan));
    }
    if !s.detail.is_empty() {
        line.push_str(&format!(" detail={}", s.detail));
    }
    if s.attempts > 0 {
        line.push_str(&format!(" attempts={}", s.attempts));
    }
    for (k, v) in &s.payload {
        line.push_str(&format!(" {k}={v}"));
    }
    if s.end > s.start {
        line.push_str(&format!(" [{}]", fmt_us(s.end - s.start)));
    }
    line
}

/// Spans of one subject within one group, chronological (stable on
/// document order for ties).
fn subject_chain<'a>(rec: &'a FlightRecording, group: &str, subject: u64) -> Vec<&'a ExplainSpan> {
    let mut chain: Vec<&ExplainSpan> = rec
        .spans
        .iter()
        .filter(|s| s.group == group && s.subject == subject)
        .collect();
    chain.sort_by_key(|s| s.start);
    chain
}

/// The causal narrative of one task across every track it appears on
/// (a spilled task's chain spans two cells).
pub fn explain_task(rec: &FlightRecording, task: u64) -> String {
    let chain = subject_chain(rec, "task", task);
    if chain.is_empty() {
        return format!("task {task}: no spans recorded");
    }
    let mut out = format!("task {task}: {} span(s)\n", chain.len());
    for s in &chain {
        out.push_str(&narrate(s, true));
        out.push('\n');
    }
    out
}

/// The availability windows of one machine plus every task span the
/// machine shows up in (placements, crashes, dead letters).
pub fn explain_machine(rec: &FlightRecording, machine: u64) -> String {
    let windows = subject_chain(rec, "machine", machine);
    let mut touched: Vec<&ExplainSpan> = rec
        .spans
        .iter()
        .filter(|s| {
            s.group == "task"
                && s.payload.iter().any(|(k, v)| {
                    matches!(k.as_str(), "machine" | "crashed_machine") && *v == machine
                })
        })
        .collect();
    touched.sort_by_key(|s| s.start);
    if windows.is_empty() && touched.is_empty() {
        return format!("machine {machine}: no spans recorded");
    }
    let mut out = format!(
        "machine {machine}: {} availability window(s), {} task span(s)\n",
        windows.len(),
        touched.len()
    );
    for s in &windows {
        out.push_str(&narrate(s, true));
        out.push('\n');
    }
    for s in &touched {
        out.push_str(&narrate(s, true));
        out.push('\n');
    }
    out
}

/// The `k` tasks with the largest queue-to-first-run latency, each with
/// its full causal chain. Tasks that never reached `running` are ranked
/// by their total recorded extent instead (they are the pathological
/// cases worth reading).
pub fn explain_worst(rec: &FlightRecording, k: usize) -> String {
    /// Per-task latency accumulator: earliest queue, earliest run, max extent.
    type Milestones = (Option<u64>, Option<u64>, u64);
    let mut by_task: HashMap<(&str, u64), Milestones> = HashMap::new();
    for s in &rec.spans {
        if s.group != "task" {
            continue;
        }
        let e = by_task
            .entry((s.cell.as_str(), s.subject))
            .or_insert((None, None, 0));
        if s.kind == "queued" && e.0.is_none_or(|q| s.start < q) {
            e.0 = Some(s.start);
        }
        if s.kind == "running" && e.1.is_none_or(|r| s.start < r) {
            e.1 = Some(s.start);
        }
        e.2 = e.2.max(s.end);
    }
    let mut ranked: Vec<(u64, u64)> = by_task
        .iter()
        .filter_map(|(&(_, subject), &(queued, running, extent))| {
            let q = queued?;
            let latency = match running {
                Some(r) if r >= q => r - q,
                _ => extent.saturating_sub(q),
            };
            Some((latency, subject))
        })
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked.dedup_by_key(|&mut (_, subject)| subject);
    if ranked.is_empty() {
        return "no task spans recorded".to_string();
    }
    let mut out = String::new();
    for (rank, &(latency, subject)) in ranked.iter().take(k).enumerate() {
        out.push_str(&format!(
            "#{} task {subject} — {} queued-to-run\n",
            rank + 1,
            fmt_us(latency)
        ));
        for s in subject_chain(rec, "task", subject) {
            out.push_str(&narrate(s, true));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_telemetry::SpanLog;

    fn obs_with(key: &str, log: SpanLog) -> Observations {
        let mut obs = Observations::default();
        obs.spans.push((key.to_string(), log));
        obs
    }

    #[test]
    fn export_and_parse_roundtrip_preserves_decision_records() {
        let mut log = SpanLog::new();
        log.open_task(7, "queued", 100, "arrival");
        log.note_attempt(7, 5);
        log.close_task_with(7, 400, "placed", "tightest_fit", "candidate_driven", 3, 5);
        log.open_task_full(7, "running", 400, "placed", "tightest_fit", "", 0, 3, 5);
        log.close_task(7, 900, "machine_crash");
        log.open_task_full(
            7,
            "retry_wait",
            900,
            "machine_crash",
            "backoff",
            "",
            1,
            250,
            3,
        );
        log.close_task(7, 1150, "backoff_elapsed");
        log.open_task(7, "queued", 1150, "retry");
        log.instant_task(
            7,
            "dead_letter",
            1400,
            "budget_exhausted",
            "backoff",
            "",
            2,
            3,
        );
        log.open_machine(3, "machine_down", 900, "crash", "");
        log.close_machine(3, 1600, "restored");
        log.close_all(2_000);
        let doc = trace_document(&obs_with("main_only.hot", log), false);
        assert_eq!(*doc.get_field("schema_version"), SCHEMA_VERSION);
        let rec = parse_trace(&doc).unwrap();
        assert_eq!(rec.schema_version, SCHEMA_VERSION);
        let chain = subject_chain(&rec, "task", 7);
        let kinds: Vec<&str> = chain.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(
            kinds,
            ["queued", "running", "retry_wait", "queued", "dead_letter"]
        );
        let placed = &chain[0];
        assert_eq!(placed.outcome, "placed");
        assert_eq!(placed.plan, "tightest_fit");
        assert_eq!(placed.detail, "candidate_driven");
        assert_eq!(placed.attempts, 1);
        assert!(placed.payload.contains(&("machine".to_string(), 3)));
        assert!(placed.payload.contains(&("candidates".to_string(), 5)));
        let wait = &chain[2];
        assert_eq!(wait.cause, "machine_crash");
        assert!(wait.payload.contains(&("delay_us".to_string(), 250)));
        assert!(wait.payload.contains(&("crashed_machine".to_string(), 3)));
        // The horizon-closed machine window survives the round trip.
        let machines = subject_chain(&rec, "machine", 3);
        assert_eq!(machines.len(), 1);
        assert_eq!(machines[0].outcome, "restored");
        assert_eq!(machines[0].end, 1_600);
    }

    #[test]
    fn retry_flow_arrows_link_backoff_to_requeue() {
        let mut log = SpanLog::new();
        log.open_task_full(
            9,
            "retry_wait",
            500,
            "machine_crash",
            "backoff",
            "",
            1,
            100,
            2,
        );
        log.close_task(9, 600, "backoff_elapsed");
        log.open_task(9, "queued", 600, "retry");
        log.close_all(1_000);
        let doc = trace_document(&obs_with("oracle.cold", log), false);
        let Value::Array(events) = doc.get_field("traceEvents") else {
            panic!("no events");
        };
        let flows: Vec<&Value> = events
            .iter()
            .filter(|e| e.get_field("cat") == "causal")
            .collect();
        assert_eq!(flows.len(), 2, "one s/f pair");
        assert_eq!(*flows[0].get_field("ph"), *"s");
        assert_eq!(*flows[0].get_field("ts"), 600u64);
        assert_eq!(*flows[1].get_field("ph"), *"f");
        assert_eq!(*flows[1].get_field("ts"), 600u64);
        assert_eq!(flows[0].get_field("id"), flows[1].get_field("id"));
    }

    #[test]
    fn spill_flow_crosses_cells_and_explain_reads_the_hop() {
        // Home cell 0 spills task 42 to sibling cell 1.
        let mut home = SpanLog::new();
        home.open_task(42, "spill_transit", 300, "no_capacity");
        home.close_task_with(42, 1_000, "routed", "", "", 1, 0);
        let mut sib = SpanLog::new();
        sib.open_task(42, "queued", 1_000, "dynamic");
        sib.close_task_with(42, 1_200, "placed", "tightest_fit", "", 8, 2);
        let mut obs = Observations::default();
        obs.spans.push(("main_only.hot".to_string(), home));
        obs.spans.push(("main_only.cold".to_string(), sib));
        let doc = trace_document(&obs, false);
        let Value::Array(events) = doc.get_field("traceEvents") else {
            panic!("no events");
        };
        let finish = events
            .iter()
            .find(|e| e.get_field("cat") == "causal" && e.get_field("ph") == "f")
            .expect("cross-cell flow finish");
        // pid 3 = second track's task plane.
        assert_eq!(*finish.get_field("pid"), 3u64);
        let rec = parse_trace(&doc).unwrap();
        let chain = subject_chain(&rec, "task", 42);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].cell, "main_only.hot");
        assert_eq!(chain[1].cell, "main_only.cold");
        let text = explain_task(&rec, 42);
        assert!(text.contains("spill_transit"));
        assert!(text.contains("outcome=routed"));
        assert!(text.contains("[main_only.cold]"));
    }

    #[test]
    fn worst_latency_ranks_by_queue_to_run_gap() {
        let mut log = SpanLog::new();
        for (task, wait) in [(1u64, 50u64), (2, 500), (3, 5)] {
            log.open_task(task, "queued", 100, "arrival");
            log.close_task_with(task, 100 + wait, "placed", "p", "", 1, 1);
            log.open_task_full(task, "running", 100 + wait, "placed", "p", "", 0, 1, 1);
            log.close_task(task, 100 + wait + 10, "finished");
        }
        let doc = trace_document(&obs_with("main_only.hot", log), false);
        let rec = parse_trace(&doc).unwrap();
        let text = explain_worst(&rec, 2);
        let pos2 = text.find("task 2").expect("worst task listed");
        let pos1 = text.find("task 1").expect("second-worst listed");
        assert!(pos2 < pos1, "ranked by latency desc:\n{text}");
        assert!(!text.contains("#3"), "only k entries");
    }

    #[test]
    fn host_track_is_gated_and_carries_round_slices() {
        let log = SpanLog::new();
        let mut obs = obs_with("main_only.hot", log);
        obs.host_rounds.push((
            "main_only".to_string(),
            ParallelPerf {
                rounds: 2,
                drain_ns: 10,
                shard_run_ns: vec![100, 200],
                shard_barrier_ns: vec![100, 0],
                round_bounds: vec![1_000, 2_000],
                round_shard_run_ns: vec![40_000, 60_000, 50_000, 50_000],
            },
        ));
        let without = trace_document(&obs, false);
        let with = trace_document(&obs, true);
        let count = |doc: &Value| match doc.get_field("traceEvents") {
            Value::Array(evs) => evs.iter().filter(|e| e.get_field("cat") == "host").count(),
            _ => 0,
        };
        assert_eq!(count(&without), 0, "--no-meta keeps the document sim-plane");
        assert_eq!(count(&with), 4, "2 rounds × 2 shards");
        // Host slices never surface from parse_trace.
        assert!(parse_trace(&with).unwrap().spans.is_empty());
    }
}
