//! Spec → assembled cell: cluster, arrivals, scenario plans, vocabulary.
//!
//! Everything here is deterministic in the spec plus the effective seed:
//! machine lists are built in declaration order, vocabularies observe
//! attributes in that same order, and all randomness flows through
//! seeded [`StdRng`]s — the property the determinism tests pin down.

use rand::rngs::StdRng;

use ctlm_data::vocab::ValueVocab;
use ctlm_sched::engine::{arrivals_from_trace, compress_timeline};
use ctlm_sched::scenario::{ChurnPlan, RolloutStage};
use ctlm_sched::{ArrivalStream, FaultPlan, PendingTask, SchedCluster, SimConfig};
use ctlm_trace::pareto::{BoundedPareto, Exponential};
use ctlm_trace::{
    AttrId, AttrValue, EventPayload, Machine, MachineId, Micros, Scale, TraceGenerator,
};

use ctlm_autoscale::{AutoscaleConfig, MachineTemplate};

use crate::spec::{
    ArrivalProcess, CellSpec, PolicyParams, RetrainSpec, RetrySpec, ScenarioSpec, SizeDist,
    SyntheticWorkload, TraceWorkload, WorkloadSpec,
};
use crate::stream::SyntheticStream;
use crate::LabError;

/// Task-id stride between cells, so ids stay unique when several cells'
/// records land in one report.
pub const CELL_ID_STRIDE: u64 = 1 << 40;

/// Pin-attribute (attr 0) value stride between cells, so a restrictive
/// task pinned in one cell never matches a sibling cell's machine.
pub const ATTR_VALUE_STRIDE: i64 = 1 << 32;

/// First machine id the autoscaler provisions from — far past any
/// initial fleet (synthetic ids count from 0, trace ids are small), so
/// provisioned machines never collide with churn plans over the
/// original fleet.
pub const AUTOSCALE_ID_BASE: u64 = 1 << 48;

/// A cell's resolved autoscaler: the policy selection (resolved at run
/// time through the registry, so sweeps can rewrite its parameters)
/// plus the fully derived kernel config.
pub struct BuiltAutoscale {
    /// Policy registry name.
    pub policy: String,
    /// Numeric policy parameters from the spec.
    pub params: PolicyParams,
    /// Derived component configuration (seed, id/attr namespaces,
    /// template already resolved).
    pub config: AutoscaleConfig,
}

/// A cell's resolved fault plane: the seeded event plan plus the retry
/// policy and spillover-outage windows the run assembly wires in.
pub struct BuiltFaults {
    /// Seeded crash/recover (and registry-degradation) timeline.
    pub plan: FaultPlan,
    /// Retry policy for crash-lost tasks.
    pub retry: RetrySpec,
    /// Outbound spillover link-outage windows `[start, end)`, merged
    /// and time-sorted.
    pub outages: Vec<(Micros, Micros)>,
    /// Planned machine-downtime integral over the horizon (µs·machine),
    /// reported as per-cell unavailability.
    pub downtime_us: u64,
}

/// A cell's arrival population: materialised up front, or decoded chunk
/// by chunk at attach time.
pub enum BuiltArrivals {
    /// The full time-sorted list, held in memory. Trace slices and
    /// model-backed runs (whose training reads the population) use this.
    Materialised(Vec<PendingTask>),
    /// Generated on demand through a [`SyntheticStream`] when the cell
    /// attaches — peak memory O(chunk), bit-identical tasks.
    Streamed(SyntheticWorkload),
}

impl BuiltArrivals {
    /// The materialised list, or `None` for a streamed cell. Consumers
    /// that must see the whole population at once (training, replay)
    /// force materialised builds and may `expect` this.
    pub fn list(&self) -> Option<&[PendingTask]> {
        match self {
            BuiltArrivals::Materialised(v) => Some(v),
            BuiltArrivals::Streamed(_) => None,
        }
    }
}

/// A cell assembled from its spec, ready to attach to a kernel
/// simulation.
pub struct BuiltCell {
    /// Cell name (report key).
    pub name: String,
    /// Cell index in the spec — namespaces ids, seeds and pin-attribute
    /// values (streamed attaches rebuild the generator from it).
    pub index: usize,
    /// The cluster (moved into the engine at attach time).
    pub cluster: SchedCluster,
    /// Time-sorted arrivals (materialised or streamed).
    pub arrivals: BuiltArrivals,
    /// Machine ids in declaration order (churn picks from these).
    pub machine_ids: Vec<MachineId>,
    /// Machine-side attribute vocabulary, observed in declaration order
    /// (model-backed schedulers encode against this).
    pub vocab: ValueVocab,
    /// Churn plan derived from the scenario, if any.
    pub churn: Option<ChurnPlan>,
    /// Gang arrivals derived from the scenario.
    pub gangs: Vec<(Micros, Vec<PendingTask>)>,
    /// Rollout stages derived from the scenario, if any.
    pub rollout: Option<(AttrId, Vec<RolloutStage>)>,
    /// Retraining cadence, passed through to the run assembly.
    pub retrain: Option<RetrainSpec>,
    /// Resolved autoscaler, if the scenario requested one.
    pub autoscale: Option<BuiltAutoscale>,
    /// Resolved fault plane, if the scenario requested one.
    pub faults: Option<BuiltFaults>,
}

/// Builds one cell from its spec. `index` namespaces task ids and seeds
/// so sibling cells never collide. With `streaming`, synthetic arrivals
/// are *not* materialised — the cell carries its workload description
/// and the attach path decodes it chunk by chunk (trace slices always
/// materialise; callers must not request streaming for cells whose
/// scheduler trains on the arrival population).
pub fn build_cell(
    spec: &CellSpec,
    sim: &SimConfig,
    index: usize,
    streaming: bool,
) -> Result<BuiltCell, LabError> {
    let id_base = index as u64 * CELL_ID_STRIDE;
    let (cluster, arrivals, machine_ids, vocab) = match &spec.workload {
        WorkloadSpec::Trace(w) => {
            let (cluster, mut arrivals, ids, vocab) = build_trace_workload(w, sim)?;
            for t in arrivals.iter_mut() {
                t.id += id_base;
            }
            (cluster, BuiltArrivals::Materialised(arrivals), ids, vocab)
        }
        WorkloadSpec::Synthetic(w) => {
            let (cluster, ids, vocab) = build_synthetic_fleet(w, index)?;
            let arrivals = if streaming {
                // Validate the generator parameters now (fail at build,
                // not mid-attach), but drop the decoded tasks.
                SyntheticStream::new(w, sim, index, id_base, 1)?;
                BuiltArrivals::Streamed(w.clone())
            } else {
                BuiltArrivals::Materialised(build_synthetic_arrivals(w, sim, index, id_base)?)
            };
            (cluster, arrivals, ids, vocab)
        }
    };
    let scenario = &spec.scenario;
    let churn = scenario.churn.as_ref().map(|c| {
        ChurnPlan::random_drain(
            sim.seed ^ c.seed ^ (index as u64).wrapping_mul(0x9E37_79B9),
            &machine_ids,
            c.failures,
            c.window,
            c.outage,
        )
    });
    let gangs = build_gangs(scenario, id_base);
    let rollout = scenario.rollout.as_ref().map(|r| {
        let stages = r.stages.max(1);
        let chunk = machine_ids.len().div_ceil(stages);
        let stages: Vec<RolloutStage> = machine_ids
            .chunks(chunk.max(1))
            .enumerate()
            .map(|(k, ms)| RolloutStage {
                time: r.start + k as Micros * r.period,
                machines: ms.to_vec(),
                value: AttrValue::Int(r.value),
            })
            .collect();
        (r.attr, stages)
    });
    let autoscale = scenario.autoscale.as_ref().map(|a| {
        // Template default: provision what the cell already runs —
        // the first synthetic machine group's shape (unit capacity for
        // trace slices, whose fleets are heterogeneous anyway).
        let template = a.template.unwrap_or_else(|| match &spec.workload {
            WorkloadSpec::Synthetic(w) => w
                .machines
                .first()
                .map(|g| MachineTemplate {
                    cpu: g.cpu,
                    memory: g.memory,
                })
                .unwrap_or_default(),
            WorkloadSpec::Trace(_) => MachineTemplate::default(),
        });
        // Synthetic cells carry the pin attribute (attr 0); provisioned
        // machines continue the cell's value sequence past the initial
        // fleet so no restrictive task ever aliases one.
        let attr_base = match &spec.workload {
            WorkloadSpec::Synthetic(_) => {
                Some(index as i64 * ATTR_VALUE_STRIDE + machine_ids.len() as i64)
            }
            WorkloadSpec::Trace(_) => None,
        };
        BuiltAutoscale {
            policy: a.policy.clone(),
            params: a.params,
            config: AutoscaleConfig {
                min: a.min,
                // Parse-time validation rejects min > max, but sweep
                // points rewrite knobs without re-validating — guard
                // like `AutoscaleConfig::new` so a swept band can never
                // panic `clamp` mid-run.
                max: a.max.max(a.min),
                cadence: a.cadence.max(1),
                warm_pool: a.warm_pool,
                delay: a.delay,
                template,
                seed: sim.seed ^ (index as u64).wrapping_mul(0xA5A5_1EAF_0000_0001),
                horizon: sim.horizon,
                id_base: AUTOSCALE_ID_BASE,
                attr_base,
            },
        }
    });
    let faults = scenario.faults.as_ref().map(|f| {
        let mut plan = match &f.crashes {
            Some(c) => FaultPlan::zone_crashes(
                // Churn-style seed mix, so sibling cells (and a churn
                // plan over the same fleet) draw independent schedules.
                sim.seed ^ c.seed ^ (index as u64).wrapping_mul(0x9E37_79B9),
                &machine_ids,
                // Spec `zones: 0` means uncorrelated — every machine
                // its own failure domain.
                if c.zones == 0 {
                    machine_ids.len()
                } else {
                    c.zones
                },
                c.count,
                c.window,
                c.mttr,
            ),
            None => FaultPlan::default(),
        };
        if let Some(d) = &f.degraded_registry {
            plan = plan.and_registry_outage(d.start, d.duration);
        }
        let downtime_us = plan.downtime_us(sim.horizon);
        let outages = f
            .link_outage
            .as_ref()
            .map(|l| {
                (0..l.count.max(1))
                    .map(|k| {
                        let start = l.start + k as Micros * l.period;
                        (start, start.saturating_add(l.duration))
                    })
                    .collect()
            })
            .unwrap_or_default();
        BuiltFaults {
            plan,
            retry: f.retry.clone(),
            outages,
            downtime_us,
        }
    });
    Ok(BuiltCell {
        name: spec.name.clone(),
        index,
        cluster,
        arrivals,
        machine_ids,
        vocab,
        churn,
        gangs,
        rollout,
        retrain: scenario.retrain.clone(),
        autoscale,
        faults,
    })
}

type Workload = (SchedCluster, Vec<PendingTask>, Vec<MachineId>, ValueVocab);

/// Cluster + arrivals from a generated trace slice.
fn build_trace_workload(w: &TraceWorkload, sim: &SimConfig) -> Result<Workload, LabError> {
    if w.machines == 0 {
        return Err(LabError::msg("trace workload needs machines > 0"));
    }
    let trace = TraceGenerator::generate_cell(
        w.cell,
        Scale {
            machines: w.machines,
            collections: w.collections,
            seed: w.seed.unwrap_or(sim.seed),
        },
    );
    let max_tasks = if w.max_tasks == 0 {
        usize::MAX
    } else {
        w.max_tasks
    };
    let (cluster, mut arrivals) = arrivals_from_trace(&trace, max_tasks);
    if w.compress_to > 0 {
        compress_timeline(&mut arrivals, w.compress_to);
    }
    // Machine order and vocabulary follow the (deterministic) event
    // stream, never cluster-map iteration order.
    let mut machine_ids = Vec::new();
    let mut vocab = ValueVocab::new();
    for ev in &trace.events {
        if let EventPayload::MachineAdd(m) = &ev.payload {
            machine_ids.push(m.id);
            for (attr, value) in &m.attributes {
                vocab.observe(*attr, value);
            }
        }
    }
    Ok((cluster, arrivals, machine_ids, vocab))
}

/// Cluster, machine ids and vocabulary from an explicit synthetic fleet
/// description (the machine half of the workload — arrivals are built,
/// or streamed, separately).
fn build_synthetic_fleet(
    w: &SyntheticWorkload,
    index: usize,
) -> Result<(SchedCluster, Vec<MachineId>, ValueVocab), LabError> {
    let total: usize = w.machines.iter().map(|g| g.count).sum();
    if total == 0 {
        return Err(LabError::msg(
            "synthetic workload needs at least one machine",
        ));
    }
    let mut machines = Vec::with_capacity(total);
    let mut vocab = ValueVocab::new();
    // Pin-attribute values are offset per cell: without this, a task
    // pinned to `hot`'s machine 2 would also match `warm`'s machine 2
    // under spillover, silently breaking the Group-0 ground truth.
    let attr_base = index as i64 * ATTR_VALUE_STRIDE;
    let mut idx = 0u64;
    for group in &w.machines {
        for _ in 0..group.count {
            let mut m = Machine::new(idx, group.cpu, group.memory);
            m.set_attr(0, AttrValue::Int(attr_base + idx as i64));
            vocab.observe(0, &AttrValue::Int(attr_base + idx as i64));
            machines.push(m);
            idx += 1;
        }
    }
    let machine_ids: Vec<MachineId> = machines.iter().map(|m| m.id).collect();
    Ok((SchedCluster::from_machines(machines), machine_ids, vocab))
}

/// The materialised synthetic arrival list — exactly the drained
/// [`SyntheticStream`]: background and restrictive tasks are each
/// generated in nondecreasing time, and the stream merges the two
/// pre-sorted runs by `(arrival, id)` — no O(N log N) re-sort, and the
/// streamed path is bit-identical by construction. Ids arrive already
/// offset by `id_base`.
fn build_synthetic_arrivals(
    w: &SyntheticWorkload,
    sim: &SimConfig,
    index: usize,
    id_base: u64,
) -> Result<Vec<PendingTask>, LabError> {
    let reserve = w.tasks + w.restrictive.as_ref().map_or(0, |r| r.count);
    let mut arrivals = Vec::with_capacity(reserve);
    let mut stream = SyntheticStream::new(w, sim, index, id_base, 65_536)?;
    while stream.refill(&mut arrivals) > 0 {}
    debug_assert!(
        arrivals
            .windows(2)
            .all(|p| (p[0].arrival, p[0].id) < (p[1].arrival, p[1].id)),
        "merged arrival runs must be (arrival, id)-sorted"
    );
    Ok(arrivals)
}

/// Gang arrivals from the scenario spec.
fn build_gangs(scenario: &ScenarioSpec, id_base: u64) -> Vec<(Micros, Vec<PendingTask>)> {
    let Some(g) = &scenario.gangs else {
        return Vec::new();
    };
    (0..g.count)
        .map(|k| {
            let time = g.start + k as Micros * g.period;
            let members = (0..g.size)
                .map(|m| PendingTask {
                    id: id_base + 600_000_000 + (k * g.size + m) as u64,
                    collection: 100 + k as u64,
                    cpu: g.cpu,
                    memory: g.cpu,
                    priority: g.priority,
                    reqs: vec![],
                    arrival: time,
                    truth_group: 25,
                })
                .collect();
            (time, members)
        })
        .collect()
}

pub(crate) fn sample_gap(p: &ArrivalProcess, rng: &mut StdRng) -> Micros {
    match p {
        ArrivalProcess::Uniform { gap } => *gap,
        ArrivalProcess::Exponential { mean_gap } => {
            (Exponential::new(*mean_gap as f64).sample(rng) as Micros).max(1)
        }
        ArrivalProcess::Pareto { lo, hi, alpha } => {
            (BoundedPareto::new(*lo, *hi, *alpha).sample(rng) as Micros).max(1)
        }
    }
}

pub(crate) fn sample_size(d: &SizeDist, rng: &mut StdRng) -> f64 {
    let raw = match d {
        SizeDist::Fixed(v) => *v,
        SizeDist::Pareto { lo, hi, alpha } => BoundedPareto::new(*lo, *hi, *alpha).sample(rng),
    };
    // Never request more than a whole machine: the engine treats
    // capacities as fractions of one node.
    raw.clamp(0.001, 0.95)
}
