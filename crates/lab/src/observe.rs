//! Sim-plane telemetry collection: folding per-cell run outcomes into
//! one [`Metrics`] registry (plus the per-cell event traces) and the
//! host-plane shard profile into a [`PerfReport`].
//!
//! Everything the metrics side records is read from simulation state —
//! counters, histograms and traces are pure functions of the
//! deterministic event sequence — and the fold happens sequentially in
//! spec order, so the registry's JSON export is byte-identical for
//! every `execution.threads` value. The perf side is wall-clock and
//! host-dependent; it never enters the registry and surfaces only in
//! the report's `_meta._perf` block.

use ctlm_sim::ParallelPerf;
use ctlm_telemetry::{Metrics, PerfReport, ShardPerf, SpanLog, TraceRing};

use crate::run::CellOutcome;

/// Sim-plane observations accumulated over a spec's runs: the metrics
/// registry and, when tracing was enabled, the per-cell event traces
/// keyed `scheduler.cell` (later runs of the same key replace earlier
/// ones — with sweeps the last grid point's trace wins, deterministically).
#[derive(Clone, Debug, Default)]
pub struct Observations {
    /// The deterministic metrics registry.
    pub metrics: Metrics,
    /// `(key, ring)` event traces in first-appearance key order.
    pub traces: Vec<(String, TraceRing)>,
    /// `(key, log)` flight-recorder span logs keyed `scheduler.cell`,
    /// first-appearance order; same-key reruns replace (like traces).
    pub spans: Vec<(String, SpanLog)>,
    /// Merged wall-clock shard profile (host plane), when profiling ran.
    pub perf: Option<PerfReport>,
    /// `(scheduler, profile)` raw per-round shard profiles — the host
    /// track of the spans export. Same-key reruns replace; never
    /// serialized into `_meta._perf` (that block carries totals only).
    pub host_rounds: Vec<(String, ParallelPerf)>,
}

impl Observations {
    /// Folds one scheduler run's per-cell outcomes (and optional shard
    /// profile) into the accumulated observations.
    pub fn record_run(
        &mut self,
        scheduler: &str,
        outcomes: &[CellOutcome],
        perf: Option<&ParallelPerf>,
        threads: usize,
    ) {
        for o in outcomes {
            record_cell(&mut self.metrics, scheduler, o);
            if let Some(ring) = &o.telemetry.trace {
                let key = format!("{scheduler}.{}", o.cell);
                match self.traces.iter_mut().find(|(k, _)| *k == key) {
                    Some(slot) => slot.1 = ring.clone(),
                    None => self.traces.push((key, ring.clone())),
                }
            }
            if let Some(log) = &o.telemetry.spans {
                let key = format!("{scheduler}.{}", o.cell);
                match self.spans.iter_mut().find(|(k, _)| *k == key) {
                    Some(slot) => slot.1 = log.clone(),
                    None => self.spans.push((key, log.clone())),
                }
            }
        }
        if let Some(p) = perf {
            let report = perf_report(p, threads);
            match &mut self.perf {
                Some(acc) => acc.merge(&report),
                None => self.perf = Some(report),
            }
            match self.host_rounds.iter_mut().find(|(k, _)| k == scheduler) {
                Some(slot) => slot.1 = p.clone(),
                None => self.host_rounds.push((scheduler.to_string(), p.clone())),
            }
        }
    }

    /// Merges another accumulation into this one (counters add, gauges
    /// and same-key traces take `other`'s value, perf accumulates).
    /// Callers merge per-point observations in grid order, keeping the
    /// result independent of how the points were scheduled onto workers.
    pub fn merge(&mut self, other: &Observations) {
        self.metrics.merge(&other.metrics);
        for (key, ring) in &other.traces {
            match self.traces.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = ring.clone(),
                None => self.traces.push((key.clone(), ring.clone())),
            }
        }
        for (key, log) in &other.spans {
            match self.spans.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = log.clone(),
                None => self.spans.push((key.clone(), log.clone())),
            }
        }
        if let Some(p) = &other.perf {
            match &mut self.perf {
                Some(acc) => acc.merge(p),
                None => self.perf = Some(p.clone()),
            }
        }
        for (key, p) in &other.host_rounds {
            match self.host_rounds.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = p.clone(),
                None => self.host_rounds.push((key.clone(), p.clone())),
            }
        }
    }
}

/// Converts the coordinator's raw nanosecond accumulators into the
/// serializable per-shard profile.
pub fn perf_report(p: &ParallelPerf, threads: usize) -> PerfReport {
    PerfReport {
        rounds: p.rounds,
        drain_ns: p.drain_ns,
        threads,
        shards: p
            .shard_run_ns
            .iter()
            .zip(&p.shard_barrier_ns)
            .map(|(&run_ns, &barrier_ns)| ShardPerf { run_ns, barrier_ns })
            .collect(),
        host: None,
    }
}

/// Records one cell's telemetry under `scheduler.cell.*` names. Counter
/// deltas accumulate across runs (sweep points, seeds, repeats); gauges
/// keep the last run's value in fold order.
fn record_cell(m: &mut Metrics, scheduler: &str, o: &CellOutcome) {
    let p = format!("{scheduler}.{}", o.cell);
    let t = &o.telemetry;
    let s = &t.stats;
    for (name, v) in [
        ("placed", s.placed),
        ("placed_with_preemption", s.placed_with_preemption),
        ("infeasible", s.infeasible),
        ("no_capacity", s.no_capacity),
        ("admitted_arrivals", s.admitted_arrivals),
        ("admitted_dynamic", s.admitted_dynamic),
        ("admitted_gang_members", s.admitted_gang_members),
        ("spill_requests", s.spill_requests),
        ("cycles", s.cycles),
    ] {
        m.counter(format!("{p}.engine.{name}"), v);
    }
    m.histogram(format!("{p}.engine.hp_depth"), &s.hp_depth);
    m.histogram(format!("{p}.engine.main_depth"), &s.main_depth);
    let l = &t.lanes;
    for (name, v) in [
        ("push_wheel", l.push_wheel),
        ("push_heap", l.push_heap),
        ("batch_wheel", l.batch_wheel),
        ("batch_sorted", l.batch_sorted),
        ("pop_wheel", l.pop_wheel),
        ("pop_sorted", l.pop_sorted),
        ("pop_heap", l.pop_heap),
    ] {
        m.counter(format!("{p}.kernel.{name}"), v);
    }
    m.counter(format!("{p}.slab.retired"), t.slab_retired);
    m.gauge(format!("{p}.slab.resident"), t.slab_resident as f64);
    m.counter(format!("{p}.spill.in"), o.spilled_in as u64);
    m.counter(format!("{p}.spill.out"), o.spilled_out as u64);
    if let Some(auto) = &o.autoscale {
        auto.record_into(m, &format!("{p}.autoscale"));
    }
    if let Some(f) = &t.faults {
        for (name, v) in [
            ("crashed_machines", f.crashed_machines),
            ("tasks_lost", f.tasks_lost),
            ("retries_scheduled", f.retries_scheduled),
            ("dead_lettered", f.dead_lettered),
            ("lost_work_us", f.lost_work_us),
            ("replacements_ordered", f.replacements_ordered),
        ] {
            m.counter(format!("{p}.faults.{name}"), v);
        }
        m.histogram(format!("{p}.faults.reschedule_us"), &f.reschedule);
        m.histogram(format!("{p}.faults.backoff_us"), &f.backoff);
    }
    if let Some(r) = &o.recovery {
        m.counter(format!("{p}.faults.link_timeouts"), r.link_timeouts);
        m.counter(
            format!("{p}.faults.unavailable_machine_us"),
            r.unavailable_machine_us,
        );
    }
}
