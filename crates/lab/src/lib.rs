//! # ctlm-lab — the declarative experiment harness
//!
//! Turns a JSON **scenario spec** into fully assembled `ctlm-sim` runs:
//! no experiment-specific Rust, just data. A spec describes
//!
//! * **topology** — machine groups with capacities (or a generated
//!   GCD-like trace slice from `ctlm-trace`);
//! * **arrivals** — replayed trace submissions, or synthetic streams
//!   with uniform/exponential/bounded-Pareto gaps and Pareto-sized
//!   requests;
//! * **scenario intensities** — churn waves, gang size/frequency,
//!   staged attribute rollouts, online-retraining cadence;
//! * **policies** — scheduler and placer selection by name through a
//!   registry over the open `ctlm-sched` traits;
//! * **multi-cell runs** — several engine cells sharing one kernel
//!   timeline, joined by a spillover router that forwards tasks a cell
//!   cannot admit;
//! * **sweeps** — cartesian grids over any numeric knob (addressed by
//!   dotted path) × seeds × repeats, executed in parallel on the rayon
//!   worker pool.
//!
//! The output is one structured JSON [`report::LabReport`]: every run's
//! per-cell, per-scheduler latency statistics (Fig. 3-style group
//! bands) plus per-point medians. Reports are pure functions of the
//! spec — identical spec + seed ⇒ byte-identical report.
//!
//! ```
//! let spec = r#"{
//!     "name": "doc",
//!     "sim": {"cycle": 500000, "attempts_per_cycle": 3,
//!              "mean_runtime": 5000000, "horizon": 60000000, "seed": 7},
//!     "schedulers": ["main_only", "oracle"],
//!     "workload": {"Synthetic": {
//!         "machines": [{"count": 6, "cpu": 1.0, "memory": 1.0}],
//!         "tasks": 150,
//!         "arrival": {"Uniform": {"gap": 30000}},
//!         "restrictive": {"count": 2, "start": 4000000,
//!                          "period": 5000000, "cpu": 0.2, "priority": 6}
//!     }}
//! }"#;
//! let report = ctlm_lab::run_spec_json(spec).unwrap();
//! assert_eq!(report.runs.len(), 1);
//! assert_eq!(report.runs[0].schedulers.len(), 2);
//! ```
//!
//! Checked-in example specs live under `experiments/`; the `ctlm-lab`
//! binary runs one: `cargo run --release -p ctlm-lab --
//! experiments/fig3_ab.json`.

use std::fmt;

pub mod build;
pub mod flight;
pub mod memtrack;
pub mod observe;
pub mod registry;
pub mod report;
pub mod run;
pub mod spec;
pub mod stream;
pub mod sweep;

pub use observe::Observations;
pub use report::LabReport;
pub use spec::ExperimentSpec;
pub use sweep::{run_spec, run_spec_json, run_spec_materialised, run_spec_observed};

/// Harness-level failure: a malformed spec, an unknown registry name, a
/// bad knob path.
#[derive(Clone, Debug)]
pub struct LabError(pub String);

impl LabError {
    /// An error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctlm-lab: {}", self.0)
    }
}

impl std::error::Error for LabError {}

impl From<serde::Error> for LabError {
    fn from(e: serde::Error) -> Self {
        Self(e.to_string())
    }
}
