//! Peak-memory accounting for lab runs.
//!
//! Two independent high-water marks, both recorded informationally in a
//! report's `_meta` block (they never feed back into the simulation, so
//! reports stay bit-deterministic):
//!
//! * **allocator high-water** — a counting wrapper around the system
//!   allocator. The `ctlm-lab` binary installs [`TrackingAlloc`] as its
//!   `#[global_allocator]`; library users who don't opt in simply
//!   report zeros.
//! * **`VmHWM`** — the kernel's peak-RSS figure from
//!   `/proc/self/status` (Linux only; `None` elsewhere). This is the
//!   number that decides whether a million-machine spec fits the
//!   container.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bytes currently live through the tracking allocator.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CURRENT`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Counting global allocator: forwards to [`System`] and maintains a
/// live-bytes counter plus its high-water mark.
pub struct TrackingAlloc;

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let live = CURRENT.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// The tracking allocator's high-water mark in bytes (zero when the
/// binary didn't install [`TrackingAlloc`]).
pub fn alloc_peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed) as u64
}

/// The process's peak resident set (`VmHWM`) in bytes, from
/// `/proc/self/status`. `None` off Linux or if the field is missing.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_hwm_parses_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }
}
