//! The `ctlm-lab` runner: execute a JSON experiment spec and report.
//!
//! ```text
//! ctlm-lab <spec.json> [--out report.json] [--json] [--seed N]
//! ```
//!
//! Prints a human-readable summary (per-point medians) to stdout;
//! `--out` additionally writes the full structured report as
//! pretty-printed JSON, `--json` replaces the summary with the report on
//! stdout, and `--seed` overrides the spec's `sim.seed` (and any sweep seed list).

use ctlm_bench::ParsedArgs;
use ctlm_lab::report::{to_pretty_json, LabReport};
use ctlm_lab::ExperimentSpec;

fn main() {
    let args = ParsedArgs::from_env(&["--json"], &["--out", "--seed"]);
    let [path] = args.positionals() else {
        eprintln!("usage: ctlm-lab <spec.json> [--out report.json] [--json] [--seed N]");
        std::process::exit(2);
    };
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read spec {path:?}: {e}"));
    let mut spec = ExperimentSpec::from_json(&text).unwrap_or_else(|e| panic!("{e}"));
    if let Some(seed) = args.option("--seed") {
        spec.sim.seed = seed
            .parse()
            .unwrap_or_else(|_| panic!("--seed needs a number"));
        // An explicit sweep seed list would shadow the override; clear
        // it so every grid point runs under the requested seed.
        if let Some(sweep) = spec.sweep.as_mut() {
            sweep.seeds.clear();
        }
    }
    let report = ctlm_lab::run_spec(&spec).unwrap_or_else(|e| panic!("{e}"));
    let json = to_pretty_json(&report);
    if let Some(out) = args.option("--out") {
        std::fs::write(out, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {out:?}: {e}"));
        eprintln!("report written to {out}");
    }
    if args.flag("--json") {
        println!("{json}");
    } else {
        print_summary(&report);
    }
}

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(us) => format!("{:.1}", us / 1000.0),
        None => "—".to_string(),
    }
}

fn print_summary(report: &LabReport) {
    println!("experiment: {} ({} runs)\n", report.name, report.runs.len());
    println!(
        "{:<40} {:<14} {:<10} {:>5} {:>14} {:>13} {:>12} {:>9}",
        "point",
        "scheduler",
        "cell",
        "runs",
        "g0 mean (ms)",
        "g0 p50 (ms)",
        "other (ms)",
        "unplaced"
    );
    println!("{}", "-".repeat(124));
    for row in &report.summary {
        let point = if row.knobs.is_empty() {
            "-".to_string()
        } else {
            row.knobs
                .iter()
                .map(|k| {
                    format!(
                        "{}={}",
                        k.path.rsplit('.').next().unwrap_or(&k.path),
                        k.value
                    )
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "{:<40} {:<14} {:<10} {:>5} {:>14} {:>13} {:>12} {:>9}",
            point,
            row.scheduler,
            row.cell,
            row.runs,
            fmt_ms(row.median_group0_mean),
            fmt_ms(row.median_group0_p50),
            fmt_ms(row.median_other_mean),
            row.median_unplaced,
        );
    }
}
