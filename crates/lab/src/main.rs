//! The `ctlm-lab` runner: execute a JSON experiment spec and report.
//!
//! ```text
//! ctlm-lab <spec.json> [--out report.json] [--json] [--seed N] [--threads N]
//!          [--materialised] [--no-meta] [--metrics metrics.json] [--trace]
//!          [--spans spans.json]
//! ctlm-lab --diff <a.json> <b.json> [--tolerance X]
//! ctlm-lab explain <spans.json> [--task N] [--machine M] [--worst-latency K]
//! ```
//!
//! Prints a human-readable summary (per-point medians) to stdout;
//! `--out` additionally writes the full structured report as
//! pretty-printed JSON, `--json` replaces the summary with the report on
//! stdout, `--seed` overrides the spec's `sim.seed` (and any sweep seed
//! list), and `--threads` overrides `execution.threads` (worker threads
//! for multi-cell shard execution; results never depend on it).
//! `--materialised` forces the classic materialise-everything arrival
//! path (the default streams synthetic arrivals; results are
//! bit-identical, only peak memory differs). Reports carry a `_meta`
//! block with the run's peak RSS, allocator high-water mark, host
//! fingerprint, and (multi-cell runs) the `_perf` per-shard wall-clock
//! profile; `--no-meta` omits all of it so two reports can be compared
//! byte for byte.
//!
//! `--metrics <path>` writes the deterministic sim-plane telemetry
//! registry (engine placement/admission counters, queue-depth
//! histograms, kernel lane stats, slab recycle stats, autoscale
//! lifecycle counters) as JSON — byte-identical for every `--threads`
//! value. `--trace` additionally keeps a bounded per-cell ring of the
//! last delivered engine events and embeds it in the metrics file.
//!
//! `--spans <path>` turns on the causal flight recorder and writes the
//! per-task lifecycle spans (with their decision records) as
//! Chrome/Perfetto trace-event JSON — load it at `ui.perfetto.dev` or
//! `chrome://tracing`. The document is byte-identical for every
//! `--threads` value except the host-plane `_perf` track group, which
//! `--no-meta` drops. `ctlm-lab explain <spans.json>` narrates a
//! written recording: `--task N` one task's causal chain, `--machine M`
//! one machine's availability and placements, `--worst-latency K` the K
//! slowest queue-to-run tasks with their full chains.
//!
//! `--diff` compares two previously written reports instead of running
//! anything: per-(point, scheduler, cell) median deltas (`b − a`), so a
//! knob change or a code change can be judged row by row. When both
//! reports carry `_meta`, the peak-memory, host, and `_perf`
//! shard-timing deltas are shown informationally (they never gate;
//! reports missing `_meta` or `_perf` — older snapshots — are fine).
//! Given two `--metrics` files instead, it prints counter deltas and
//! exits zero. The exit code gates: it is
//! non-zero when any compared median (group-0 mean, other mean, or
//! unplaced count) regresses — grows from `a` to `b` by more than the
//! relative `--tolerance` (default 0, i.e. any increase fails; a zero
//! baseline regresses on any increase) — so CI can diff two runs
//! directly.

use ctlm_bench::ParsedArgs;
use ctlm_lab::memtrack::{self, TrackingAlloc};
use ctlm_lab::observe::Observations;
use ctlm_lab::report::{diff_reports, to_pretty_json, LabReport, ReportMeta, SummaryDiff};
use ctlm_lab::run::ArrivalMode;
use ctlm_lab::ExperimentSpec;
use ctlm_telemetry::{HostFingerprint, Metrics, PerfReport};
use serde::Deserialize;

/// Counting allocator so `_meta.alloc_peak_bytes` reflects the run (the
/// library never installs it; only this binary pays the two atomics).
#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn main() {
    let args = ParsedArgs::from_env(
        &["--json", "--diff", "--materialised", "--no-meta", "--trace"],
        &[
            "--out",
            "--seed",
            "--threads",
            "--tolerance",
            "--metrics",
            "--spans",
            "--task",
            "--machine",
            "--worst-latency",
        ],
    );
    if args.positionals().first().map(String::as_str) == Some("explain") {
        run_explain(&args);
        return;
    }
    if args.flag("--diff") {
        let [a, b] = args.positionals() else {
            eprintln!("usage: ctlm-lab --diff <a.json> <b.json> [--tolerance X]");
            std::process::exit(2);
        };
        let tolerance: f64 = args
            .option("--tolerance")
            .map(|t| {
                t.parse()
                    .unwrap_or_else(|_| panic!("--tolerance needs a number"))
            })
            .unwrap_or(0.0);
        let (va, vb) = (load_json(a), load_json(b));
        warn_schema_mismatch(&va, &vb);
        // Two metrics files (written by `--metrics`) diff as counter
        // deltas — informational, never gating.
        if let (Some(ma), Some(mb)) = (parse_metrics(&va), parse_metrics(&vb)) {
            print_metrics_diff(&ma, &mb);
            return;
        }
        let regressions = print_diff(&parse_report(a, &va), &parse_report(b, &vb), tolerance);
        if !regressions.is_empty() {
            eprintln!(
                "\n{} regression(s) beyond tolerance {tolerance}:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        return;
    }
    let [path] = args.positionals() else {
        eprintln!(
            "usage: ctlm-lab <spec.json> [--out report.json] [--json] [--seed N] [--threads N]"
        );
        eprintln!("       ctlm-lab --diff <a.json> <b.json> [--tolerance X]");
        std::process::exit(2);
    };
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read spec {path:?}: {e}"));
    let mut spec = ExperimentSpec::from_json(&text).unwrap_or_else(|e| panic!("{e}"));
    if let Some(seed) = args.option("--seed") {
        spec.sim.seed = seed
            .parse()
            .unwrap_or_else(|_| panic!("--seed needs a number"));
        // An explicit sweep seed list would shadow the override; clear
        // it so every grid point runs under the requested seed.
        if let Some(sweep) = spec.sweep.as_mut() {
            sweep.seeds.clear();
        }
    }
    if let Some(threads) = args.option("--threads") {
        spec.execution.threads = threads
            .parse()
            .unwrap_or_else(|_| panic!("--threads needs a number"));
    }
    let metrics_out = args.option("--metrics");
    if metrics_out.is_some() {
        spec.observability.metrics = true;
    }
    let spans_out = args.option("--spans");
    if spans_out.is_some() {
        spec.observability.spans = true;
    }
    if args.flag("--trace") && spec.observability.trace_events == 0 {
        spec.observability.trace_events = 4096;
    }
    // Profiling feeds `_meta._perf` only, so it is pointless (and pure
    // overhead) when `--no-meta` drops the block.
    if !args.flag("--no-meta") {
        spec.observability.profile = true;
    }
    let mode = if args.flag("--materialised") {
        ArrivalMode::Materialised
    } else {
        ArrivalMode::Streaming
    };
    let (mut report, obs) =
        ctlm_lab::run_spec_observed(&spec, mode).unwrap_or_else(|e| panic!("{e}"));
    if !args.flag("--no-meta") {
        let host = HostFingerprint::detect();
        let perf = obs.perf.clone().map(|mut p| {
            p.host = Some(host.clone());
            p
        });
        report._meta = Some(ReportMeta {
            peak_rss_bytes: memtrack::peak_rss_bytes(),
            alloc_peak_bytes: memtrack::alloc_peak_bytes(),
            host: Some(host),
            _perf: perf,
        });
    }
    if let Some(path) = metrics_out {
        let json = to_pretty_json(&metrics_document(&obs));
        std::fs::write(path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = spans_out {
        let doc = ctlm_lab::flight::trace_document(&obs, !args.flag("--no-meta"));
        let json = to_pretty_json(&doc);
        std::fs::write(path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        eprintln!("spans written to {path}");
    }
    let json = to_pretty_json(&report);
    if let Some(out) = args.option("--out") {
        std::fs::write(out, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {out:?}: {e}"));
        eprintln!("report written to {out}");
    }
    if args.flag("--json") {
        println!("{json}");
    } else {
        print_summary(&report);
    }
}

/// The `explain` subcommand: parse a written spans file and print the
/// requested narrative(s). With no selector, prints a recording
/// summary.
fn run_explain(args: &ParsedArgs) {
    let positionals = args.positionals();
    let Some(path) = positionals.get(1) else {
        eprintln!(
            "usage: ctlm-lab explain <spans.json> [--task N] [--machine M] [--worst-latency K]"
        );
        std::process::exit(2);
    };
    let doc = load_json(path);
    let rec = ctlm_lab::flight::parse_trace(&doc).unwrap_or_else(|e| panic!("{e}"));
    if rec.schema_version != ctlm_telemetry::SCHEMA_VERSION as f64 as u64 {
        eprintln!(
            "warning: spans file has schema_version {}, this binary writes {}",
            rec.schema_version,
            ctlm_telemetry::SCHEMA_VERSION
        );
    }
    let parse_id = |name: &str| -> Option<u64> {
        args.option(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} needs a number"))
        })
    };
    let mut printed = false;
    if let Some(task) = parse_id("--task") {
        print!("{}", ctlm_lab::flight::explain_task(&rec, task));
        printed = true;
    }
    if let Some(machine) = parse_id("--machine") {
        print!("{}", ctlm_lab::flight::explain_machine(&rec, machine));
        printed = true;
    }
    if let Some(k) = parse_id("--worst-latency") {
        print!("{}", ctlm_lab::flight::explain_worst(&rec, k as usize));
        printed = true;
    }
    if !printed {
        let tasks = rec
            .spans
            .iter()
            .filter(|s| s.group == "task")
            .map(|s| s.subject)
            .collect::<std::collections::HashSet<_>>()
            .len();
        println!(
            "{} span(s) across {} task(s) (schema_version {})",
            rec.spans.len(),
            tasks,
            rec.schema_version
        );
        println!("select with --task N, --machine M, or --worst-latency K");
    }
}

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(us) => format!("{:.1}", us / 1000.0),
        None => "—".to_string(),
    }
}

fn load_json(path: &str) -> serde_json::Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read report {path:?}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path:?}: {e}"))
}

fn parse_report(path: &str, value: &serde_json::Value) -> LabReport {
    Deserialize::from_value(value)
        .unwrap_or_else(|e| panic!("{path:?} is not a ctlm-lab report: {e}"))
}

/// A metrics file (written by `--metrics`) is an object with a
/// `metrics` block; anything else is not one.
fn parse_metrics(value: &serde_json::Value) -> Option<Metrics> {
    let serde_json::Value::Object(fields) = value else {
        return None;
    };
    let (_, m) = fields.iter().find(|(k, _)| k == "metrics")?;
    Deserialize::from_value(m).ok()
}

/// The document `--metrics <path>` writes: a `schema_version` stamp,
/// the registry, plus the event traces (sorted by key) when tracing
/// ran. Everything inside is sim-plane state, so the file is
/// byte-identical for every `execution.threads` value.
fn metrics_document(obs: &Observations) -> serde_json::Value {
    let mut fields = vec![
        (
            "schema_version".to_string(),
            serde_json::Value::Num(ctlm_telemetry::SCHEMA_VERSION as f64),
        ),
        (
            "metrics".to_string(),
            serde::Serialize::to_value(&obs.metrics),
        ),
    ];
    if !obs.traces.is_empty() {
        let mut traces: Vec<_> = obs.traces.iter().collect();
        traces.sort_by(|(a, _), (b, _)| a.cmp(b));
        fields.push((
            "traces".to_string(),
            serde_json::Value::Object(
                traces
                    .into_iter()
                    .map(|(k, ring)| (k.clone(), serde::Serialize::to_value(ring)))
                    .collect(),
            ),
        ));
    }
    serde_json::Value::Object(fields)
}

/// Warns when the two compared documents carry different
/// `schema_version` stamps (a missing stamp — reports, older snapshots
/// — reads as version 0 and is only flagged against a stamped file
/// when the other side is stamped too). Deltas across schema versions
/// can reflect format drift rather than behaviour change.
fn warn_schema_mismatch(a: &serde_json::Value, b: &serde_json::Value) {
    let stamp = |v: &serde_json::Value| v.get_field("schema_version").as_f64();
    if let (Some(sa), Some(sb)) = (stamp(a), stamp(b)) {
        if sa != sb {
            eprintln!(
                "warning: schema_version mismatch ({sa} vs {sb}) — deltas may reflect \
                 format drift, not behaviour"
            );
        }
    }
}

/// Counter deltas between two metrics files: every name present on
/// either side, skipping unchanged values. Informational only.
fn print_metrics_diff(a: &Metrics, b: &Metrics) {
    println!("metrics diff (b − a):");
    println!("{:<56} {:>14} {:>14} {:>12}", "counter", "a", "b", "Δ");
    println!("{}", "-".repeat(100));
    let mut names: Vec<&str> = a
        .counters_sorted()
        .iter()
        .map(|&(n, _)| n)
        .chain(b.counters_sorted().iter().map(|&(n, _)| n))
        .collect();
    names.sort_unstable();
    names.dedup();
    let mut unchanged = 0usize;
    for name in names {
        let va = a.counter_value(name).unwrap_or(0);
        let vb = b.counter_value(name).unwrap_or(0);
        if va == vb {
            unchanged += 1;
            continue;
        }
        let delta = vb as i128 - va as i128;
        println!("{name:<56} {va:>14} {vb:>14} {delta:>+12}");
    }
    println!("({unchanged} unchanged counter(s) not shown)");
}

fn point_label(diff: &SummaryDiff) -> String {
    if diff.knobs.is_empty() {
        "-".to_string()
    } else {
        diff.knobs
            .iter()
            .map(|k| {
                format!(
                    "{}={}",
                    k.path.rsplit('.').next().unwrap_or(&k.path),
                    k.value
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// `a → b (Δ, ×ratio)` for one latency metric, in milliseconds.
fn fmt_pair_ms(pair: (Option<f64>, Option<f64>)) -> String {
    let delta = SummaryDiff::delta(pair);
    let ratio = SummaryDiff::ratio(pair);
    match (delta, ratio) {
        (Some(d), Some(r)) => format!(
            "{} → {} ({}{:.1}, ×{:.2})",
            fmt_ms(pair.0),
            fmt_ms(pair.1),
            if d >= 0.0 { "+" } else { "−" },
            d.abs() / 1000.0,
            r
        ),
        _ => format!("{} → {}", fmt_ms(pair.0), fmt_ms(pair.1)),
    }
}

/// True when `b` exceeds `a` by more than the relative tolerance. A
/// zero baseline regresses on any increase (there is no meaningful
/// relative slack from 0).
fn regressed(pair: (Option<f64>, Option<f64>), tolerance: f64) -> Option<(f64, f64)> {
    let (Some(a), Some(b)) = pair else {
        return None;
    };
    (b > a * (1.0 + tolerance)).then_some((a, b))
}

/// `bytes → MiB` with one decimal.
fn fmt_mib(bytes: u64) -> String {
    format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// Prints the peak-memory delta between two reports' `_meta` blocks.
/// Purely informational — memory never gates the diff exit code.
fn print_meta_diff(a: &Option<ReportMeta>, b: &Option<ReportMeta>) {
    let (Some(ma), Some(mb)) = (a, b) else {
        return;
    };
    if let (Some(ra), Some(rb)) = (ma.peak_rss_bytes, mb.peak_rss_bytes) {
        println!(
            "peak RSS:        {} → {} ({}{}) [informational]",
            fmt_mib(ra),
            fmt_mib(rb),
            if rb >= ra { "+" } else { "−" },
            fmt_mib(rb.abs_diff(ra)),
        );
    }
    println!(
        "alloc high-water: {} → {} ({}{}) [informational]",
        fmt_mib(ma.alloc_peak_bytes),
        fmt_mib(mb.alloc_peak_bytes),
        if mb.alloc_peak_bytes >= ma.alloc_peak_bytes {
            "+"
        } else {
            "−"
        },
        fmt_mib(mb.alloc_peak_bytes.abs_diff(ma.alloc_peak_bytes)),
    );
    match (&ma.host, &mb.host) {
        (Some(ha), Some(hb)) if !ha.same_host(hb) => {
            println!(
                "note: reports come from different hosts ({} vs {}) — wall-clock \
                 comparisons are apples to oranges",
                ha.label(),
                hb.label()
            );
        }
        _ => {}
    }
    print_perf_diff(&ma._perf, &mb._perf);
}

/// Prints the shard-timing delta between two `_perf` blocks. Purely
/// informational (wall-clock numbers never gate); either side may be
/// missing — older snapshots and unprofiled runs carry no `_perf`.
fn print_perf_diff(a: &Option<PerfReport>, b: &Option<PerfReport>) {
    let (Some(pa), Some(pb)) = (a, b) else {
        return;
    };
    println!(
        "shard critical path: {:.1} µs/round → {:.1} µs/round over {} → {} round(s), \
         {} → {} thread(s) [informational]",
        pa.critical_path_us_per_round(),
        pb.critical_path_us_per_round(),
        pa.rounds,
        pb.rounds,
        pa.threads,
        pb.threads,
    );
}

/// Prints the row-by-row diff and returns descriptions of every median
/// that regressed beyond `tolerance`.
fn print_diff(a: &LabReport, b: &LabReport, tolerance: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    println!("diff: {} → {}", a.name, b.name);
    print_meta_diff(&a._meta, &b._meta);
    println!(
        "{:<34} {:<14} {:<10} {:<34} {:<34} {:>14}",
        "point", "scheduler", "cell", "g0 mean (ms)", "other (ms)", "unplaced"
    );
    println!("{}", "-".repeat(144));
    for row in diff_reports(a, b) {
        let marker = match row.present {
            (true, true) => "",
            (true, false) => "  [only in a]",
            (false, true) => "  [only in b]",
            (false, false) => unreachable!("diff rows come from at least one report"),
        };
        let opt = |v: Option<f64>| v.map_or("—".to_string(), |x| x.to_string());
        let unplaced = format!("{} → {}", opt(row.unplaced.0), opt(row.unplaced.1));
        println!(
            "{:<34} {:<14} {:<10} {:<34} {:<34} {:>14}{}",
            point_label(&row),
            row.scheduler,
            row.cell,
            fmt_pair_ms(row.group0_mean),
            fmt_pair_ms(row.other_mean),
            unplaced,
            marker
        );
        if row.fleet_peak.0.is_some() || row.fleet_peak.1.is_some() {
            let f = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x}"));
            println!(
                "{:<34} {:<14} {:<10} fleet peak {} → {}",
                "",
                "",
                "",
                f(row.fleet_peak.0),
                f(row.fleet_peak.1)
            );
        }
        if row.dead_lettered.0.is_some() || row.dead_lettered.1.is_some() {
            let f = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x}"));
            println!(
                "{:<34} {:<14} {:<10} dead-lettered {} → {}",
                "",
                "",
                "",
                f(row.dead_lettered.0),
                f(row.dead_lettered.1)
            );
        }
        // Gate on the compared medians (fleet peak is informational:
        // bigger is not inherently worse).
        for (metric, pair) in [
            ("g0 mean", row.group0_mean),
            ("other mean", row.other_mean),
            ("unplaced", row.unplaced),
            // Compared only when both reports ran a fault plane —
            // more dead-lettered work is a recovery regression.
            ("dead-lettered", row.dead_lettered),
        ] {
            if let Some((va, vb)) = regressed(pair, tolerance) {
                regressions.push(format!(
                    "{} / {} / {}: {metric} {va} → {vb}",
                    point_label(&row),
                    row.scheduler,
                    row.cell
                ));
            }
        }
    }
    regressions
}

fn print_summary(report: &LabReport) {
    println!("experiment: {} ({} runs)\n", report.name, report.runs.len());
    println!(
        "{:<40} {:<14} {:<10} {:>5} {:>14} {:>13} {:>12} {:>9}",
        "point",
        "scheduler",
        "cell",
        "runs",
        "g0 mean (ms)",
        "g0 p50 (ms)",
        "other (ms)",
        "unplaced"
    );
    println!("{}", "-".repeat(124));
    for row in &report.summary {
        let point = if row.knobs.is_empty() {
            "-".to_string()
        } else {
            row.knobs
                .iter()
                .map(|k| {
                    format!(
                        "{}={}",
                        k.path.rsplit('.').next().unwrap_or(&k.path),
                        k.value
                    )
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "{:<40} {:<14} {:<10} {:>5} {:>14} {:>13} {:>12} {:>9}",
            point,
            row.scheduler,
            row.cell,
            row.runs,
            fmt_ms(row.median_group0_mean),
            fmt_ms(row.median_group0_p50),
            fmt_ms(row.median_other_mean),
            row.median_unplaced,
        );
    }
}
