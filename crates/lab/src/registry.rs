//! Name → implementation registries over the open `ctlm-sched` traits.
//!
//! Specs select policies by string; the registries here resolve those
//! strings into [`Scheduler`] / [`Placer`] instances. Model-backed
//! schedulers are *trained here, from the spec's own workload* — no
//! experiment-specific Rust: `enhanced` trains a
//! [`TaskCoAnalyzer`] on the cell's arrivals
//! before the run, and `live_registry` starts cold and receives
//! hot-swapped models from the in-timeline retraining component
//! ([`RetrainSource`](crate::run::RetrainSource)).

use std::sync::Arc;

use ctlm_core::{GrowingModel, ModelRegistry, TaskCoAnalyzer, TrainConfig};
use ctlm_data::dataset::{DatasetBuilder, NUM_GROUPS};
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_sched::placement::{BestFit, FirstFit, Placer, PreemptiveBestFit};
use ctlm_sched::scheduler::{Enhanced, LiveRegistry, MainOnly, OracleEnhanced, Scheduler};

use crate::build::BuiltCell;
use crate::spec::TrainSpec;
use crate::LabError;

/// A resolved scheduler plus the model registry backing it (present only
/// for `live_registry`, where the retraining component installs into it).
pub struct SchedulerInstance {
    /// The routing policy under test.
    pub scheduler: Box<dyn Scheduler>,
    /// Hot-swap handle for in-timeline retraining.
    pub registry: Option<ModelRegistry>,
}

/// Scheduler registry names, in registration order.
pub const SCHEDULER_NAMES: &[&str] = &["main_only", "oracle", "enhanced", "live_registry"];

/// Placer registry names, in registration order.
pub const PLACER_NAMES: &[&str] = &["best_fit", "first_fit", "preemptive_best_fit"];

/// Validates a scheduler name without building it.
pub fn check_scheduler(name: &str) -> Result<(), LabError> {
    if SCHEDULER_NAMES.contains(&name) {
        Ok(())
    } else {
        Err(LabError::msg(format!(
            "unknown scheduler {name:?} (registry: {})",
            SCHEDULER_NAMES.join(", ")
        )))
    }
}

/// Validates a placer name without building it.
pub fn check_placer(name: &str) -> Result<(), LabError> {
    if PLACER_NAMES.contains(&name) {
        Ok(())
    } else {
        Err(LabError::msg(format!(
            "unknown placer {name:?} (registry: {})",
            PLACER_NAMES.join(", ")
        )))
    }
}

/// Builds a scheduler instance for one cell.
pub fn build_scheduler(
    name: &str,
    cell: &BuiltCell,
    train: &TrainSpec,
    seed: u64,
) -> Result<SchedulerInstance, LabError> {
    match name {
        "main_only" => Ok(SchedulerInstance {
            scheduler: Box::new(MainOnly),
            registry: None,
        }),
        "oracle" => Ok(SchedulerInstance {
            scheduler: Box::new(OracleEnhanced),
            registry: None,
        }),
        "enhanced" => {
            let analyzer = train_analyzer(cell, train, seed);
            Ok(SchedulerInstance {
                scheduler: Box::new(Enhanced::new(Arc::new(analyzer))),
                registry: None,
            })
        }
        "live_registry" => {
            let registry = ModelRegistry::new();
            Ok(SchedulerInstance {
                scheduler: Box::new(LiveRegistry::new(registry.clone())),
                registry: Some(registry),
            })
        }
        other => Err(LabError::msg(format!("unknown scheduler {other:?}"))),
    }
}

/// Builds a placer by registry name.
pub fn build_placer(name: &str) -> Result<Box<dyn Placer>, LabError> {
    match name {
        "best_fit" => Ok(Box::new(BestFit)),
        "first_fit" => Ok(Box::new(FirstFit)),
        "preemptive_best_fit" => Ok(Box::new(PreemptiveBestFit)),
        other => Err(LabError::msg(format!("unknown placer {other:?}"))),
    }
}

/// Trains a [`TaskCoAnalyzer`] on the cell's own arrival population:
/// CO-VV rows against the cell's machine vocabulary, labelled with the
/// ground-truth suitable-node groups the builder computed.
pub fn train_analyzer(cell: &BuiltCell, train: &TrainSpec, seed: u64) -> TaskCoAnalyzer {
    let vocab = cell.vocab.clone();
    let width = vocab.len();
    let enc = CoVvEncoder;
    let mut b = DatasetBuilder::new(width, NUM_GROUPS);
    for t in &cell.arrivals {
        b.push(enc.encode_requirements(&t.reqs, &vocab), t.truth_group);
    }
    let ds = b.snapshot(width);
    let mut model = GrowingModel::new(train_config(train));
    model.step(&ds, seed);
    TaskCoAnalyzer::new(model.to_net(), vocab)
}

/// The spec's training budget over the paper's defaults.
pub fn train_config(train: &TrainSpec) -> TrainConfig {
    TrainConfig {
        epochs_limit: train.epochs_limit,
        max_attempts: train.max_attempts,
        ..TrainConfig::default()
    }
}
