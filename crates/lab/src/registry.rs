//! Name → implementation registries over the open `ctlm-sched` traits.
//!
//! Specs select policies by string; the registries here resolve those
//! strings into [`Scheduler`] / [`Placer`] instances. Model-backed
//! schedulers are *trained here, from the spec's own workload* — no
//! experiment-specific Rust: `enhanced` trains a
//! [`TaskCoAnalyzer`] on the cell's arrivals
//! before the run, and `live_registry` starts cold and receives
//! hot-swapped models from the in-timeline retraining component
//! ([`RetrainSource`](crate::run::RetrainSource)).

use std::sync::Arc;

use ctlm_autoscale::{AutoscalePolicy, MachineTemplate, Predictive, TargetTracking, ThresholdStep};
use ctlm_core::{GrowingModel, ModelRegistry, TaskCoAnalyzer, TrainConfig};
use ctlm_data::compaction::collapse;
use ctlm_data::dataset::{DatasetBuilder, NUM_GROUPS};
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_sched::placement::{BestFit, FirstFit, Placer, PreemptiveBestFit, SoftAffinityBestFit};
use ctlm_sched::scheduler::{Enhanced, LiveRegistry, MainOnly, OracleEnhanced, Scheduler};
use ctlm_sched::SimConfig;
use ctlm_trace::{AttrValue, ConstraintOp, TaskConstraint};

use crate::build::BuiltCell;
use crate::spec::{PlacerSpec, PolicyParams, SoftAffinitySpec, SoftOpSpec, TrainSpec};
use crate::LabError;

/// A resolved scheduler plus the model registry backing it (present only
/// for `live_registry`, where the retraining component installs into it).
pub struct SchedulerInstance {
    /// The routing policy under test.
    pub scheduler: Box<dyn Scheduler>,
    /// Hot-swap handle for in-timeline retraining.
    pub registry: Option<ModelRegistry>,
}

/// Scheduler registry names, in registration order.
pub const SCHEDULER_NAMES: &[&str] = &["main_only", "oracle", "enhanced", "live_registry"];

/// Placer registry names, in registration order.
pub const PLACER_NAMES: &[&str] = &[
    "best_fit",
    "first_fit",
    "preemptive_best_fit",
    "best_fit_soft",
];

/// Autoscaling-policy registry names, in registration order.
pub const AUTOSCALE_POLICY_NAMES: &[&str] = &["threshold", "target_tracking", "predictive"];

/// Validates a scheduler name without building it.
pub fn check_scheduler(name: &str) -> Result<(), LabError> {
    if SCHEDULER_NAMES.contains(&name) {
        Ok(())
    } else {
        Err(LabError::msg(format!(
            "unknown scheduler {name:?} (registry: {})",
            SCHEDULER_NAMES.join(", ")
        )))
    }
}

/// Validates a placer name without building it.
pub fn check_placer(name: &str) -> Result<(), LabError> {
    if PLACER_NAMES.contains(&name) {
        Ok(())
    } else {
        Err(LabError::msg(format!(
            "unknown placer {name:?} (registry: {})",
            PLACER_NAMES.join(", ")
        )))
    }
}

/// Validates an autoscaling-policy name without building it.
pub fn check_autoscale_policy(name: &str) -> Result<(), LabError> {
    if AUTOSCALE_POLICY_NAMES.contains(&name) {
        Ok(())
    } else {
        Err(LabError::msg(format!(
            "unknown autoscale policy {name:?} (registry: {})",
            AUTOSCALE_POLICY_NAMES.join(", ")
        )))
    }
}

/// Builds an autoscaling policy by registry name. Unset [`PolicyParams`]
/// fields take the documented defaults; the predictive policy derives
/// its workload estimates from the spec's mean runtime and the
/// provisioning template's capacity.
pub fn build_autoscale_policy(
    name: &str,
    params: &PolicyParams,
    sim: &SimConfig,
    template: &MachineTemplate,
) -> Result<Box<dyn AutoscalePolicy>, LabError> {
    check_autoscale_policy(name)?;
    match name {
        "threshold" => Ok(Box::new(ThresholdStep {
            up_pending: params.up_pending.unwrap_or(8) as usize,
            up_latency: params.up_latency,
            down_util: params.down_util.unwrap_or(0.3),
            step: params.step.unwrap_or(2) as usize,
        })),
        "target_tracking" => Ok(Box::new(TargetTracking {
            target_util: params.target_util.unwrap_or(0.6),
            tolerance: params.tolerance.unwrap_or(0.1),
        })),
        "predictive" => Ok(Box::new(Predictive::new(
            params.window.unwrap_or(6) as usize,
            params.headroom.unwrap_or(1.2),
            params.task_cpu.unwrap_or(0.25),
            sim.mean_runtime,
            template.cpu,
        ))),
        other => Err(LabError::msg(format!("unknown autoscale policy {other:?}"))),
    }
}

/// Builds a scheduler instance for one cell.
pub fn build_scheduler(
    name: &str,
    cell: &BuiltCell,
    train: &TrainSpec,
    seed: u64,
) -> Result<SchedulerInstance, LabError> {
    match name {
        "main_only" => Ok(SchedulerInstance {
            scheduler: Box::new(MainOnly),
            registry: None,
        }),
        "oracle" => Ok(SchedulerInstance {
            scheduler: Box::new(OracleEnhanced),
            registry: None,
        }),
        "enhanced" => {
            let analyzer = train_analyzer(cell, train, seed);
            Ok(SchedulerInstance {
                scheduler: Box::new(Enhanced::new(Arc::new(analyzer))),
                registry: None,
            })
        }
        "live_registry" => {
            let registry = ModelRegistry::new();
            Ok(SchedulerInstance {
                scheduler: Box::new(LiveRegistry::new(registry.clone())),
                registry: Some(registry),
            })
        }
        other => Err(LabError::msg(format!("unknown scheduler {other:?}"))),
    }
}

/// Builds a placer by registry name. The `best_fit_soft` strategy takes
/// its preference set from the spec's `placers.soft` list instead of a
/// hard-coded default — soft affinity is experiment data, not code.
pub fn build_placer(name: &str, spec: &PlacerSpec) -> Result<Box<dyn Placer>, LabError> {
    match name {
        "best_fit" => Ok(Box::new(BestFit)),
        "first_fit" => Ok(Box::new(FirstFit)),
        "preemptive_best_fit" => Ok(Box::new(PreemptiveBestFit)),
        "best_fit_soft" => Ok(Box::new(SoftAffinityBestFit {
            soft: soft_requirements(&spec.soft)?,
        })),
        other => Err(LabError::msg(format!("unknown placer {other:?}"))),
    }
}

/// Collapses the spec's soft-affinity terms into the requirement form
/// the placer scores against.
pub fn soft_requirements(
    soft: &[SoftAffinitySpec],
) -> Result<Vec<ctlm_data::compaction::AttrRequirement>, LabError> {
    let constraints: Vec<TaskConstraint> = soft
        .iter()
        .map(|s| {
            let op = match &s.op {
                SoftOpSpec::Equal(v) => ConstraintOp::Equal(Some(AttrValue::Int(*v))),
                SoftOpSpec::EqualStr(v) => ConstraintOp::Equal(Some(AttrValue::Str(v.clone()))),
                SoftOpSpec::LessThan(v) => ConstraintOp::LessThan(*v),
                SoftOpSpec::GreaterThan(v) => ConstraintOp::GreaterThan(*v),
                SoftOpSpec::LessThanEqual(v) => ConstraintOp::LessThanEqual(*v),
                SoftOpSpec::GreaterThanEqual(v) => ConstraintOp::GreaterThanEqual(*v),
            };
            TaskConstraint::new(s.attr, op)
        })
        .collect();
    collapse(&constraints)
        .map_err(|e| LabError::msg(format!("unsatisfiable soft-affinity set: {e:?}")))
}

/// Trains a [`TaskCoAnalyzer`] on the cell's own arrival population:
/// CO-VV rows against the cell's machine vocabulary, labelled with the
/// ground-truth suitable-node groups the builder computed.
pub fn train_analyzer(cell: &BuiltCell, train: &TrainSpec, seed: u64) -> TaskCoAnalyzer {
    let vocab = cell.vocab.clone();
    let width = vocab.len();
    let enc = CoVvEncoder;
    let mut b = DatasetBuilder::new(width, NUM_GROUPS);
    let arrivals = cell
        .arrivals
        .list()
        .expect("model-backed schedulers materialise their arrivals");
    for t in arrivals {
        b.push(enc.encode_requirements(&t.reqs, &vocab), t.truth_group);
    }
    let ds = b.snapshot(width);
    let mut model = GrowingModel::new(train_config(train));
    model.step(&ds, seed);
    TaskCoAnalyzer::new(model.to_net(), vocab)
}

/// The spec's training budget over the paper's defaults.
pub fn train_config(train: &TrainSpec) -> TrainConfig {
    TrainConfig {
        epochs_limit: train.epochs_limit,
        max_attempts: train.max_attempts,
        ..TrainConfig::default()
    }
}
