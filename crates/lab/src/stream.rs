//! Streaming synthetic arrival generation: the lab-side
//! [`ArrivalStream`] that decodes a [`SyntheticWorkload`] chunk by
//! chunk instead of materialising it.
//!
//! Bit-identity with the materialised builder is by construction, not by
//! luck — the materialised arrival list `crate::build` produces *is* a
//! drained [`SyntheticStream`]. The stream reproduces the classic
//! generator's RNG draw sequence exactly:
//!
//! 1. at construction, one RNG **burns** every background draw (gap,
//!    cpu, memory per task — the order the materialised loop used) and
//!    then draws the restrictive tasks' machine pins, so the pins come
//!    out of the identical stream positions;
//! 2. the (few) restrictive tasks are materialised up front — they are
//!    spec-bounded and carry constraint lists, not a scale concern;
//! 3. background tasks replay lazily from a second, identically seeded
//!    RNG as chunks are pulled;
//! 4. each refill **merges** the two nondecreasing runs by
//!    `(arrival, id)` — the same total order the old
//!    `sort_by_key(|t| (t.arrival, t.id))` produced (ids are unique, so
//!    the stable sort was exactly this strict order).
//!
//! Peak memory for the background population is one chunk, which is what
//! lets a million-machine, tens-of-millions-of-tasks spec run in
//! container memory.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ctlm_data::compaction::collapse;
use ctlm_data::dataset::group_for_count;
use ctlm_sched::{ArrivalStream, PendingTask, SimConfig};
use ctlm_trace::{AttrValue, ConstraintOp, Micros, TaskConstraint};

use crate::build::{sample_gap, sample_size, ATTR_VALUE_STRIDE};
use crate::spec::{ArrivalProcess, SizeDist, SyntheticWorkload};
use crate::LabError;

/// Pull-based generator for a [`SyntheticWorkload`]'s arrivals.
///
/// Emits the same tasks, in the same order, with the same ids as the
/// materialised builder — see the module docs for how the RNG burn and
/// two-run merge pin that down.
pub struct SyntheticStream {
    /// Replays the background draws (gap, cpu, memory per task) from the
    /// same seed the burn RNG used.
    rng: StdRng,
    /// Background tasks not yet generated.
    remaining: usize,
    /// Next background task id (before `id_base`).
    next_id: u64,
    /// Background arrival clock (gaps accumulate).
    now: Micros,
    arrival: ArrivalProcess,
    cpu: SizeDist,
    memory: SizeDist,
    priority: u8,
    background_group: u8,
    /// Restrictive (Group-0) tasks, materialised and `(arrival, id)`
    /// sorted — spec-bounded, so holding them is O(restrictive.count).
    restrictive: Vec<PendingTask>,
    r_pos: usize,
    id_base: u64,
    chunk: usize,
    /// One-task lookahead: the next background task, generated so the
    /// merge can compare it against the next restrictive task.
    peeked: Option<PendingTask>,
}

impl SyntheticStream {
    /// Builds the stream for one cell. `index` namespaces the RNG seed
    /// and pin-attribute values exactly as the materialised builder
    /// does; `id_base` is added to every task id (the per-cell id
    /// stride); `chunk` tasks are emitted per refill.
    ///
    /// # Panics
    /// Panics when `chunk` is 0.
    pub fn new(
        w: &SyntheticWorkload,
        sim: &SimConfig,
        index: usize,
        id_base: u64,
        chunk: usize,
    ) -> Result<Self, LabError> {
        assert!(chunk > 0, "chunk size must be positive");
        let total: usize = w.machines.iter().map(|g| g.count).sum();
        if total == 0 {
            return Err(LabError::msg(
                "synthetic workload needs at least one machine",
            ));
        }
        let seed = sim.seed ^ 0xB17D_5EED ^ (index as u64).wrapping_mul(0x0C1E_77A2);
        // Burn the background population's draws so the restrictive pins
        // come from the same RNG positions the one-pass builder gave
        // them (gap, then cpu, then memory per task — Uniform gaps and
        // Fixed sizes draw nothing, matching the samplers).
        let mut burn = StdRng::seed_from_u64(seed);
        for _ in 0..w.tasks {
            sample_gap(&w.arrival, &mut burn);
            sample_size(&w.cpu, &mut burn);
            sample_size(&w.memory, &mut burn);
        }
        let attr_base = index as i64 * ATTR_VALUE_STRIDE;
        let mut restrictive = Vec::new();
        if let Some(r) = &w.restrictive {
            restrictive.reserve(r.count);
            for j in 0..r.count {
                let pin = attr_base + burn.gen_range(0..total) as i64;
                let reqs = collapse(&[TaskConstraint::new(
                    0,
                    ConstraintOp::Equal(Some(AttrValue::Int(pin))),
                )])
                .map_err(|e| LabError::msg(format!("restrictive constraint: {e:?}")))?;
                restrictive.push(PendingTask {
                    id: id_base + 500_000_000 + j as u64,
                    collection: 2,
                    cpu: r.cpu,
                    memory: r.cpu,
                    priority: r.priority,
                    reqs,
                    arrival: r.start + j as Micros * r.period,
                    truth_group: 0,
                });
            }
        }
        debug_assert!(
            restrictive
                .windows(2)
                .all(|p| (p[0].arrival, p[0].id) < (p[1].arrival, p[1].id)),
            "restrictive run must be (arrival, id)-sorted"
        );
        let group_width = (total.div_ceil(26)).max(1);
        Ok(Self {
            rng: StdRng::seed_from_u64(seed),
            remaining: w.tasks,
            next_id: 0,
            now: 0,
            arrival: w.arrival.clone(),
            cpu: w.cpu.clone(),
            memory: w.memory.clone(),
            priority: w.priority,
            background_group: group_for_count(total, group_width),
            restrictive,
            r_pos: 0,
            id_base,
            chunk,
            peeked: None,
        })
    }

    /// Generates the next background task (consuming its RNG draws in
    /// the canonical gap/cpu/memory order).
    fn gen_background(&mut self) -> PendingTask {
        self.now += sample_gap(&self.arrival, &mut self.rng);
        let t = PendingTask {
            id: self.id_base + self.next_id,
            collection: 1,
            cpu: sample_size(&self.cpu, &mut self.rng),
            memory: sample_size(&self.memory, &mut self.rng),
            priority: self.priority,
            reqs: vec![],
            arrival: self.now,
            truth_group: self.background_group,
        };
        self.next_id += 1;
        self.remaining -= 1;
        t
    }
}

impl ArrivalStream for SyntheticStream {
    fn refill(&mut self, out: &mut Vec<PendingTask>) -> usize {
        let mut n = 0;
        while n < self.chunk {
            if self.peeked.is_none() && self.remaining > 0 {
                self.peeked = Some(self.gen_background());
            }
            let take_restrictive = match (&self.peeked, self.restrictive.get(self.r_pos)) {
                (Some(b), Some(r)) => (r.arrival, r.id) < (b.arrival, b.id),
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };
            if take_restrictive {
                out.push(self.restrictive[self.r_pos].clone());
                self.r_pos += 1;
            } else {
                out.push(self.peeked.take().expect("checked above"));
            }
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MachineGroup, RestrictiveSpec};

    fn workload() -> SyntheticWorkload {
        SyntheticWorkload {
            machines: vec![MachineGroup {
                count: 10,
                cpu: 1.0,
                memory: 1.0,
            }],
            tasks: 500,
            arrival: ArrivalProcess::Exponential { mean_gap: 40_000 },
            cpu: SizeDist::Pareto {
                lo: 0.02,
                hi: 0.5,
                alpha: 1.2,
            },
            memory: SizeDist::Fixed(0.05),
            priority: 2,
            restrictive: Some(RestrictiveSpec {
                count: 7,
                start: 1_000_000,
                period: 2_000_000,
                cpu: 0.2,
                priority: 6,
            }),
        }
    }

    #[test]
    fn stream_is_sorted_and_complete_for_any_chunk() {
        let w = workload();
        let sim = SimConfig {
            seed: 11,
            ..SimConfig::default()
        };
        let drain = |chunk: usize| -> Vec<(u64, Micros, u64, u64, u8, usize)> {
            let mut s = SyntheticStream::new(&w, &sim, 1, 1 << 40, chunk).unwrap();
            let mut all = Vec::new();
            while s.refill(&mut all) > 0 {}
            all.iter()
                .map(|t| {
                    (
                        t.id,
                        t.arrival,
                        t.cpu.to_bits(),
                        t.memory.to_bits(),
                        t.truth_group,
                        t.reqs.len(),
                    )
                })
                .collect()
        };
        let base = drain(10_000); // one refill covers everything
        assert_eq!(base.len(), 507);
        assert!(base.windows(2).all(|p| (p[0].1, p[0].0) < (p[1].1, p[1].0)));
        for chunk in [1, 13, 64] {
            let tasks = drain(chunk);
            assert_eq!(tasks, base, "chunk {chunk} must not change the stream");
        }
    }
}
