//! Structured experiment reports: per-run records plus per-point
//! medians, serialized as one JSON document.
//!
//! Reports are pure functions of the spec (no wall-clock, no host
//! state), so identical specs produce byte-identical reports — the
//! determinism tests serialize and compare them directly.

use serde::{Deserialize, Serialize};

use ctlm_autoscale::AutoscaleStats;
use ctlm_sched::LatencyStats;
use ctlm_telemetry::{HostFingerprint, PerfReport};

use crate::run::CellOutcome;
use crate::spec::KnobSpec;

/// The Fig. 3-style suitable-node-group latency bands reports break
/// out: Group 0 alone, then widening bands.
pub const GROUP_BANDS: &[(u8, u8)] = &[(0, 0), (1, 5), (6, 15), (16, 25)];

/// The full document the runner emits.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabReport {
    /// Experiment name from the spec.
    pub name: String,
    /// Every executed run (sweep grid × seeds × repeats; a single entry
    /// for non-sweep specs).
    pub runs: Vec<RunReport>,
    /// Per-(point, scheduler, cell) medians across seeds × repeats.
    pub summary: Vec<SummaryRow>,
    /// Host-side measurements, attached by the `ctlm-lab` binary after
    /// the run — never by `run_spec` itself, so library-level reports
    /// stay pure functions of the spec. Informational only: `--diff`
    /// shows the delta but never gates on it.
    #[serde(default)]
    pub _meta: Option<ReportMeta>,
}

/// Host-side measurement block (see [`LabReport::_meta`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReportMeta {
    /// Peak resident set (`VmHWM`) in bytes, when the platform exposes
    /// it (Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Counting-allocator high-water mark in bytes (zero unless the
    /// binary installed [`crate::memtrack::TrackingAlloc`]).
    pub alloc_peak_bytes: u64,
    /// Fingerprint of the host that produced the report (cpu model,
    /// core count). Lets `--diff` flag cross-host comparisons. Absent
    /// in reports from older snapshots — readers must tolerate that.
    #[serde(default)]
    pub host: Option<HostFingerprint>,
    /// Wall-clock shard profile (per-shard run/barrier time and
    /// coordinator drain time per epoch round), when the run profiled.
    /// Host-dependent and informational only; like the rest of `_meta`
    /// it is dropped by `--no-meta` and excluded from byte-compares.
    #[serde(default)]
    pub _perf: Option<PerfReport>,
}

/// One executed run: one grid point under one seed/repeat.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Knob values applied for this run (empty for non-sweep specs).
    pub knobs: Vec<KnobSetting>,
    /// Effective kernel seed.
    pub seed: u64,
    /// Repeat index under that seed.
    pub repeat: usize,
    /// One entry per scheduler name in the spec.
    pub schedulers: Vec<SchedulerRun>,
}

/// One applied knob value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KnobSetting {
    /// Dotted path into the spec.
    pub path: String,
    /// The value applied.
    pub value: f64,
}

/// One scheduler's outcome across all cells.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedulerRun {
    /// Scheduler registry name.
    pub scheduler: String,
    /// Per-cell results, in spec order.
    pub cells: Vec<CellRun>,
}

/// One cell's structured result.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRun {
    /// Cell name.
    pub cell: String,
    /// Tasks placed within the horizon.
    pub placed: usize,
    /// Tasks never placed.
    pub unplaced: usize,
    /// Preemption evictions.
    pub preemptions: usize,
    /// Churn-driven reschedules.
    pub churn_rescheduled: usize,
    /// Gangs placed atomically.
    pub gangs_placed: usize,
    /// Tasks received from sibling cells (spillover).
    pub spilled_in: usize,
    /// Tasks forwarded to sibling cells (spillover).
    pub spilled_out: usize,
    /// Latency over Group-0 (single-suitable-node) tasks.
    pub group0: Option<LatencyStats>,
    /// Latency over everything else.
    pub other: Option<LatencyStats>,
    /// Latency per suitable-node-group band ([`GROUP_BANDS`]).
    pub bands: Vec<BandStats>,
    /// The cell's autoscaler outcome — fleet-size timeline, lifecycle
    /// counters — when the scenario ran one.
    pub autoscale: Option<AutoscaleStats>,
    /// Recovery accounting — lost/retried/dead-lettered tasks, lost
    /// work, link timeouts — when the scenario ran a fault plane.
    /// Serialized only when present, so fault-free reports stay
    /// byte-identical to earlier snapshots.
    pub recovery: Option<RecoveryReport>,
}

/// Fault-plane recovery accounting for one cell.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Crash events that removed an online machine.
    pub machines_crashed: u64,
    /// Running tasks severed by crashes.
    pub tasks_lost: u64,
    /// Retries scheduled under the policy's budget.
    pub retries: u64,
    /// Tasks whose retry budget ran out (the engine's
    /// `failed_permanently` terminal state).
    pub dead_lettered: u64,
    /// Run time severed by crashes (µs of lost work).
    pub lost_work_us: u64,
    /// Mean time from task loss to successful re-placement (µs), when
    /// any lost task was re-placed.
    pub reschedule_mean_us: Option<f64>,
    /// Outbound spill requests that timed out in a link-outage window
    /// and bounced back to the home queue.
    pub link_timeouts: u64,
    /// Planned machine downtime over the horizon (µs·machine).
    pub unavailable_machine_us: u64,
}

// Manual impls: the `recovery` field is appended only when present, so
// reports from fault-free specs keep the exact byte layout of earlier
// snapshots (the derive would emit `"recovery": null`).
impl serde::Serialize for CellRun {
    fn to_value(&self) -> serde_json::Value {
        let mut fields = vec![
            ("cell".to_string(), self.cell.to_value()),
            ("placed".to_string(), self.placed.to_value()),
            ("unplaced".to_string(), self.unplaced.to_value()),
            ("preemptions".to_string(), self.preemptions.to_value()),
            (
                "churn_rescheduled".to_string(),
                self.churn_rescheduled.to_value(),
            ),
            ("gangs_placed".to_string(), self.gangs_placed.to_value()),
            ("spilled_in".to_string(), self.spilled_in.to_value()),
            ("spilled_out".to_string(), self.spilled_out.to_value()),
            ("group0".to_string(), self.group0.to_value()),
            ("other".to_string(), self.other.to_value()),
            ("bands".to_string(), self.bands.to_value()),
            ("autoscale".to_string(), self.autoscale.to_value()),
        ];
        if let Some(r) = &self.recovery {
            fields.push(("recovery".to_string(), r.to_value()));
        }
        serde_json::Value::Object(fields)
    }
}

impl serde::Deserialize for CellRun {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            cell: serde::Deserialize::from_value(v.get_field("cell"))?,
            placed: serde::Deserialize::from_value(v.get_field("placed"))?,
            unplaced: serde::Deserialize::from_value(v.get_field("unplaced"))?,
            preemptions: serde::Deserialize::from_value(v.get_field("preemptions"))?,
            churn_rescheduled: serde::Deserialize::from_value(v.get_field("churn_rescheduled"))?,
            gangs_placed: serde::Deserialize::from_value(v.get_field("gangs_placed"))?,
            spilled_in: serde::Deserialize::from_value(v.get_field("spilled_in"))?,
            spilled_out: serde::Deserialize::from_value(v.get_field("spilled_out"))?,
            group0: serde::Deserialize::from_value(v.get_field("group0"))?,
            other: serde::Deserialize::from_value(v.get_field("other"))?,
            bands: serde::Deserialize::from_value(v.get_field("bands"))?,
            autoscale: serde::Deserialize::from_value(v.get_field("autoscale"))?,
            // Missing in fault-free and pre-fault reports → None.
            recovery: serde::Deserialize::from_value(v.get_field("recovery"))?,
        })
    }
}

/// Latency within one suitable-node-group band.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BandStats {
    /// Lowest group in the band (inclusive).
    pub lo: u8,
    /// Highest group in the band (inclusive).
    pub hi: u8,
    /// Stats over the band's placed tasks.
    pub stats: Option<LatencyStats>,
}

impl CellRun {
    /// Collapses an engine outcome into the report form.
    pub fn from_outcome(o: &CellOutcome) -> Self {
        let bands = GROUP_BANDS
            .iter()
            .map(|&(lo, hi)| BandStats {
                lo,
                hi,
                stats: o.result.latency_where(|g| g >= lo && g <= hi),
            })
            .collect();
        Self {
            cell: o.cell.clone(),
            placed: o.result.placed.len(),
            unplaced: o.result.unplaced,
            preemptions: o.result.preemptions,
            churn_rescheduled: o.result.churn_rescheduled,
            gangs_placed: o.result.gangs_placed,
            spilled_in: o.spilled_in,
            spilled_out: o.spilled_out,
            group0: o.result.group0_latency(),
            other: o.result.other_latency(),
            bands,
            autoscale: o.autoscale.clone(),
            recovery: o.recovery.clone(),
        }
    }
}

/// Medians for one (grid point, scheduler, cell) across seeds × repeats.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryRow {
    /// The grid point's knob values.
    pub knobs: Vec<KnobSetting>,
    /// Scheduler registry name.
    pub scheduler: String,
    /// Cell name.
    pub cell: String,
    /// Runs aggregated into this row.
    pub runs: usize,
    /// Median of the per-run Group-0 mean latency (µs).
    pub median_group0_mean: Option<f64>,
    /// Median of the per-run Group-0 p50 latency (µs).
    pub median_group0_p50: Option<f64>,
    /// Median of the per-run other-task mean latency (µs).
    pub median_other_mean: Option<f64>,
    /// Median placed count.
    pub median_placed: f64,
    /// Median unplaced count.
    pub median_unplaced: f64,
    /// Median peak fleet size (autoscaled cells only).
    pub median_fleet_peak: Option<f64>,
    /// Median dead-lettered task count (fault-plane cells only;
    /// serialized only when present, keeping fault-free reports
    /// byte-identical to earlier snapshots).
    pub median_dead_lettered: Option<f64>,
}

impl serde::Serialize for SummaryRow {
    fn to_value(&self) -> serde_json::Value {
        let mut fields = vec![
            ("knobs".to_string(), self.knobs.to_value()),
            ("scheduler".to_string(), self.scheduler.to_value()),
            ("cell".to_string(), self.cell.to_value()),
            ("runs".to_string(), self.runs.to_value()),
            (
                "median_group0_mean".to_string(),
                self.median_group0_mean.to_value(),
            ),
            (
                "median_group0_p50".to_string(),
                self.median_group0_p50.to_value(),
            ),
            (
                "median_other_mean".to_string(),
                self.median_other_mean.to_value(),
            ),
            ("median_placed".to_string(), self.median_placed.to_value()),
            (
                "median_unplaced".to_string(),
                self.median_unplaced.to_value(),
            ),
            (
                "median_fleet_peak".to_string(),
                self.median_fleet_peak.to_value(),
            ),
        ];
        if self.median_dead_lettered.is_some() {
            fields.push((
                "median_dead_lettered".to_string(),
                self.median_dead_lettered.to_value(),
            ));
        }
        serde_json::Value::Object(fields)
    }
}

impl serde::Deserialize for SummaryRow {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            knobs: serde::Deserialize::from_value(v.get_field("knobs"))?,
            scheduler: serde::Deserialize::from_value(v.get_field("scheduler"))?,
            cell: serde::Deserialize::from_value(v.get_field("cell"))?,
            runs: serde::Deserialize::from_value(v.get_field("runs"))?,
            median_group0_mean: serde::Deserialize::from_value(v.get_field("median_group0_mean"))?,
            median_group0_p50: serde::Deserialize::from_value(v.get_field("median_group0_p50"))?,
            median_other_mean: serde::Deserialize::from_value(v.get_field("median_other_mean"))?,
            median_placed: serde::Deserialize::from_value(v.get_field("median_placed"))?,
            median_unplaced: serde::Deserialize::from_value(v.get_field("median_unplaced"))?,
            median_fleet_peak: serde::Deserialize::from_value(v.get_field("median_fleet_peak"))?,
            median_dead_lettered: serde::Deserialize::from_value(
                v.get_field("median_dead_lettered"),
            )?,
        })
    }
}

/// Median of a sample (mean of the middle pair for even sizes); `None`
/// for an empty sample.
pub fn median(mut xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    let n = xs.len();
    Some(if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    })
}

/// Builds the per-point summary: runs grouped by (knobs, scheduler,
/// cell) in first-appearance order, medians across the group.
pub fn summarize(runs: &[RunReport]) -> Vec<SummaryRow> {
    let mut order: Vec<(Vec<KnobSetting>, String, String)> = Vec::new();
    let mut buckets: Vec<Vec<&CellRun>> = Vec::new();
    for run in runs {
        for sched in &run.schedulers {
            for cell in &sched.cells {
                let key = (
                    run.knobs.clone(),
                    sched.scheduler.clone(),
                    cell.cell.clone(),
                );
                match order.iter().position(|k| *k == key) {
                    Some(i) => buckets[i].push(cell),
                    None => {
                        order.push(key);
                        buckets.push(vec![cell]);
                    }
                }
            }
        }
    }
    order
        .into_iter()
        .zip(buckets)
        .map(|((knobs, scheduler, cell), group)| SummaryRow {
            knobs,
            scheduler,
            cell,
            runs: group.len(),
            median_group0_mean: median(
                group
                    .iter()
                    .filter_map(|c| c.group0.as_ref().map(|s| s.mean))
                    .collect(),
            ),
            median_group0_p50: median(
                group
                    .iter()
                    .filter_map(|c| c.group0.as_ref().map(|s| s.p50 as f64))
                    .collect(),
            ),
            median_other_mean: median(
                group
                    .iter()
                    .filter_map(|c| c.other.as_ref().map(|s| s.mean))
                    .collect(),
            ),
            median_placed: median(group.iter().map(|c| c.placed as f64).collect())
                .expect("non-empty group"),
            median_unplaced: median(group.iter().map(|c| c.unplaced as f64).collect())
                .expect("non-empty group"),
            median_fleet_peak: median(
                group
                    .iter()
                    .filter_map(|c| c.autoscale.as_ref().map(|a| a.peak_active() as f64))
                    .collect(),
            ),
            median_dead_lettered: median(
                group
                    .iter()
                    .filter_map(|c| c.recovery.as_ref().map(|r| r.dead_lettered as f64))
                    .collect(),
            ),
        })
        .collect()
}

/// Applied knob values for grouping/reporting.
pub fn knob_settings(knobs: &[KnobSpec], choice: &[usize]) -> Vec<KnobSetting> {
    knobs
        .iter()
        .zip(choice)
        .map(|(k, &i)| KnobSetting {
            path: k.path.clone(),
            value: k.values[i],
        })
        .collect()
}

/// Renders any serializable report piece with two-space indentation
/// (the shim's `to_string` is compact; reports are meant to be read).
pub fn to_pretty_json<T: serde::Serialize + ?Sized>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("report values carry no non-finite numbers")
}

/// One summary row's change between two reports (`b − a`), keyed by
/// `(knobs, scheduler, cell)`. Rows present in only one report carry
/// that side's values and `None` deltas.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryDiff {
    /// Grid-point knob values.
    pub knobs: Vec<KnobSetting>,
    /// Scheduler registry name.
    pub scheduler: String,
    /// Cell name.
    pub cell: String,
    /// Row presence: `(in a, in b)` — at least one is true.
    pub present: (bool, bool),
    /// `(a, b)` median Group-0 mean latency (µs).
    pub group0_mean: (Option<f64>, Option<f64>),
    /// `(a, b)` median Group-0 p50 latency (µs).
    pub group0_p50: (Option<f64>, Option<f64>),
    /// `(a, b)` median other-task mean latency (µs).
    pub other_mean: (Option<f64>, Option<f64>),
    /// `(a, b)` median unplaced count.
    pub unplaced: (Option<f64>, Option<f64>),
    /// `(a, b)` median peak fleet (autoscaled cells).
    pub fleet_peak: (Option<f64>, Option<f64>),
    /// `(a, b)` median dead-lettered tasks (fault-plane cells).
    pub dead_lettered: (Option<f64>, Option<f64>),
}

impl SummaryDiff {
    /// `b − a` for one metric pair; `None` unless both sides exist.
    pub fn delta(pair: (Option<f64>, Option<f64>)) -> Option<f64> {
        Some(pair.1? - pair.0?)
    }

    /// `b / a` for one metric pair; `None` unless both sides exist and
    /// `a` is non-zero.
    pub fn ratio(pair: (Option<f64>, Option<f64>)) -> Option<f64> {
        match pair {
            (Some(a), Some(b)) if a != 0.0 => Some(b / a),
            _ => None,
        }
    }
}

/// Pairs two reports' summaries by `(knobs, scheduler, cell)` —
/// `a`'s row order first, then rows only `b` has. The `ctlm-lab --diff`
/// command prints these as per-point median deltas.
pub fn diff_reports(a: &LabReport, b: &LabReport) -> Vec<SummaryDiff> {
    fn key(r: &SummaryRow) -> (&[KnobSetting], &str, &str) {
        (&r.knobs, &r.scheduler, &r.cell)
    }
    let mut out = Vec::new();
    for ra in &a.summary {
        let rb = b.summary.iter().find(|r| key(r) == key(ra));
        out.push(pair_rows(Some(ra), rb));
    }
    for rb in &b.summary {
        if !a.summary.iter().any(|r| key(r) == key(rb)) {
            out.push(pair_rows(None, Some(rb)));
        }
    }
    out
}

fn pair_rows(a: Option<&SummaryRow>, b: Option<&SummaryRow>) -> SummaryDiff {
    let anchor = a.or(b).expect("at least one side present");
    let get = |f: fn(&SummaryRow) -> Option<f64>| (a.and_then(f), b.and_then(f));
    SummaryDiff {
        knobs: anchor.knobs.clone(),
        scheduler: anchor.scheduler.clone(),
        cell: anchor.cell.clone(),
        present: (a.is_some(), b.is_some()),
        group0_mean: get(|r| r.median_group0_mean),
        group0_p50: get(|r| r.median_group0_p50),
        other_mean: get(|r| r.median_other_mean),
        unplaced: get(|r| Some(r.median_unplaced)),
        fleet_peak: get(|r| r.median_fleet_peak),
        dead_lettered: get(|r| r.median_dead_lettered),
    }
}
