//! The streaming-arrivals contract, pinned: decoding synthetic arrivals
//! chunk by chunk ([`run_spec`], the default) produces **bit-identical**
//! reports to materialising every arrival list up front
//! ([`run_spec_materialised`]) — for every checked-in spec, for any
//! chunk size, and across a randomized family of small synthetic
//! scenarios. Combined with `parallel_determinism.rs` (threads never
//! change a report), this is what lets million-machine specs stream with
//! no semantic risk.

use ctlm_lab::report::to_pretty_json;
use ctlm_lab::{run_spec, run_spec_materialised, ExperimentSpec};

fn experiments_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../experiments")
}

fn load(path: &std::path::Path) -> ExperimentSpec {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    ExperimentSpec::from_json(&text).unwrap_or_else(|e| panic!("parse {path:?}: {e}"))
}

fn assert_stream_matches(spec: &ExperimentSpec, label: &str) {
    let streamed = to_pretty_json(&run_spec(spec).expect("streamed run"));
    let materialised = to_pretty_json(&run_spec_materialised(spec).expect("materialised run"));
    assert_eq!(
        streamed, materialised,
        "{label}: streaming changed the report"
    );
}

/// Every checked-in root spec — synthetic and trace cells, sweeps,
/// churn, gangs, autoscalers, model-backed schedulers (which fall back
/// to materialising) — reports identically under both arrival paths.
#[test]
fn every_checked_in_spec_streams_bit_identically() {
    let mut files: Vec<_> = std::fs::read_dir(experiments_dir())
        .expect("experiments directory")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "json").then_some(p)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no experiment specs found");
    for path in files {
        let spec = load(&path);
        assert_stream_matches(&spec, &path.display().to_string());
    }
}

/// Chunk size is a memory knob, never a semantic one: refill boundaries
/// must not shift any arrival, spill, or admission decision.
#[test]
fn chunk_size_never_changes_the_report() {
    let spec = load(&experiments_dir().join("streaming_smoke.json"));
    let mut baseline: Option<String> = None;
    for chunk in [64, 1024, 8192] {
        let mut spec = spec.clone();
        spec.execution.arrival_chunk = chunk;
        let json = to_pretty_json(&run_spec(&spec).expect("spec runs"));
        match &baseline {
            None => baseline = Some(json),
            Some(expected) => {
                assert_eq!(&json, expected, "report changed at arrival_chunk={chunk}")
            }
        }
    }
}

/// Randomized family: two-cell spillover specs over a grid of arrival
/// processes, size distributions, fleet shapes and seeds. Each point
/// must stream bit-identically — the property the per-spec tests above
/// sample only at checked-in corners.
#[test]
fn randomized_synthetic_specs_stream_bit_identically() {
    let arrivals = [
        r#"{"Uniform": {"gap": 25000}}"#,
        r#"{"Exponential": {"mean_gap": 30000}}"#,
        r#"{"Pareto": {"lo": 5000, "hi": 200000, "alpha": 1.4}}"#,
    ];
    let sizes = [
        r#"{"Fixed": 0.2}"#,
        r#"{"Pareto": {"lo": 0.05, "hi": 0.7, "alpha": 1.2}}"#,
    ];
    for (i, (arrival, size)) in arrivals
        .iter()
        .flat_map(|a| sizes.iter().map(move |s| (a, s)))
        .enumerate()
    {
        let seed = 100 + 37 * i as u64;
        let tasks = 400 + 130 * i;
        let machines = 12 + 7 * i;
        let text = format!(
            r#"{{
                "name": "prop-{i}",
                "sim": {{"cycle": 500000, "attempts_per_cycle": 16,
                         "mean_runtime": 6000000, "horizon": 40000000,
                         "seed": {seed}}},
                "schedulers": ["main_only", "oracle"],
                "spillover": "least_loaded",
                "execution": {{"threads": 2, "epoch_us": "auto",
                               "arrival_chunk": 128}},
                "cells": [
                    {{"name": "a", "workload": {{"Synthetic": {{
                        "machines": [{{"count": {machines}, "cpu": 1.0, "memory": 1.0}}],
                        "tasks": {tasks},
                        "arrival": {arrival},
                        "cpu": {size},
                        "memory": {{"Fixed": 0.1}},
                        "priority": 2,
                        "restrictive": {{"count": 5, "start": 2000000,
                                         "period": 4000000, "cpu": 0.2,
                                         "priority": 6}}
                    }}}}}},
                    {{"name": "b", "workload": {{"Synthetic": {{
                        "machines": [{{"count": {machines}, "cpu": 1.0, "memory": 1.0}}],
                        "tasks": {tasks},
                        "arrival": {arrival},
                        "cpu": {{"Fixed": 0.15}},
                        "memory": {{"Fixed": 0.15}},
                        "priority": 2
                    }}}}}}
                ]
            }}"#
        );
        let spec = ExperimentSpec::from_json(&text).expect("property spec parses");
        assert_stream_matches(&spec, &format!("prop-{i} ({arrival} × {size})"));
    }
}
