//! Harness-level tests: bit-identical reports for identical spec+seed
//! (extending the `kernel_scenarios` determinism pattern to the whole
//! declarative pipeline), spec round-trips, knob rewriting, the checked-in
//! example specs, and the serde-shim features the schema leans on.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};

use ctlm_autoscale::ProvisionDelay;
use ctlm_lab::report::to_pretty_json;
use ctlm_lab::spec::{
    ArrivalProcess, AutoscaleSpec, ChurnSpec, ExecutionSpec, ExperimentSpec, GangSpec, KnobSpec,
    MachineGroup, ObservabilitySpec, PlacerSpec, PolicyParams, RestrictiveSpec, ScenarioSpec,
    SizeDist, SpilloverPolicy, SweepSpec, SyntheticWorkload, TrainSpec, WorkloadSpec,
};
use ctlm_lab::{run_spec, run_spec_json};
use ctlm_sched::SimConfig;

/// A small contended synthetic spec exercising churn, gangs and a sweep.
fn busy_spec() -> String {
    r#"{
        "name": "busy",
        "sim": {"cycle": 500000, "attempts_per_cycle": 3,
                 "mean_runtime": 6000000, "horizon": 90000000, "seed": 11},
        "schedulers": ["main_only", "oracle"],
        "workload": {"Synthetic": {
            "machines": [{"count": 6, "cpu": 1.0, "memory": 1.0}],
            "tasks": 250,
            "arrival": {"Exponential": {"mean_gap": 45000}},
            "cpu": {"Pareto": {"lo": 0.05, "hi": 0.4, "alpha": 1.2}},
            "priority": 2,
            "restrictive": {"count": 3, "start": 4000000,
                             "period": 5000000, "cpu": 0.2, "priority": 6}
        }},
        "scenario": {
            "churn": {"failures": 2, "window": [10000000, 30000000],
                       "outage": 15000000, "seed": 4},
            "gangs": {"count": 2, "size": 3, "start": 15000000,
                       "period": 20000000, "cpu": 0.5, "priority": 4}
        },
        "sweep": {"knobs": [{"path": "scenario.churn.failures", "values": [0, 2]}],
                   "seeds": [11, 12], "repeats": 1}
    }"#
    .to_string()
}

#[test]
fn identical_spec_and_seed_give_bit_identical_reports() {
    let spec = busy_spec();
    let a = run_spec_json(&spec).expect("first run");
    let b = run_spec_json(&spec).expect("second run");
    let ja = to_pretty_json(&Serialize::to_value(&a));
    let jb = to_pretty_json(&Serialize::to_value(&b));
    assert_eq!(ja, jb, "report must be a pure function of the spec");
    // 2 knob values × 2 seeds × 1 repeat.
    assert_eq!(a.runs.len(), 4);
    // Churn actually fired on the failures=2 points.
    let churned = a
        .runs
        .iter()
        .filter(|r| r.knobs.iter().any(|k| k.value == 2.0))
        .flat_map(|r| &r.schedulers)
        .flat_map(|s| &s.cells)
        .map(|c| c.churn_rescheduled)
        .sum::<usize>();
    assert!(churned > 0, "failures=2 points must reschedule tasks");
    // Gangs placed on every run.
    assert!(a
        .runs
        .iter()
        .flat_map(|r| &r.schedulers)
        .flat_map(|s| &s.cells)
        .all(|c| c.gangs_placed > 0));
}

#[test]
fn oracle_beats_main_only_from_spec_alone() {
    let report = run_spec_json(&busy_spec()).expect("run");
    for row_pair in report.summary.chunks(2) {
        // Summary rows come in (main_only, oracle) pairs per point.
        let (main, oracle) = (&row_pair[0], &row_pair[1]);
        assert_eq!(main.scheduler, "main_only");
        assert_eq!(oracle.scheduler, "oracle");
        let (m, o) = (
            main.median_group0_mean.expect("group0 placed"),
            oracle.median_group0_mean.expect("group0 placed"),
        );
        assert!(o < m, "oracle group0 mean {o} must beat main-only {m}");
    }
}

#[test]
fn checked_in_specs_parse_and_spillover_runs_deterministically() {
    for name in [
        "fig3_ab",
        "churn_sweep",
        "three_cell_spillover",
        "elastic_burst",
    ] {
        let text = std::fs::read_to_string(format!("../../experiments/{name}.json"))
            .expect("checked-in spec readable");
        ExperimentSpec::from_json(&text).expect("checked-in spec parses");
    }
    let text = std::fs::read_to_string("../../experiments/three_cell_spillover.json").unwrap();
    let a = run_spec_json(&text).expect("spillover run");
    let b = run_spec_json(&text).expect("spillover rerun");
    assert_eq!(
        to_pretty_json(&Serialize::to_value(&a)),
        to_pretty_json(&Serialize::to_value(&b)),
        "multi-cell spillover must be deterministic on one timeline"
    );
    let cells: Vec<_> = a.runs[0].schedulers[0].cells.iter().collect();
    assert_eq!(cells.len(), 3);
    let spilled: usize = cells.iter().map(|c| c.spilled_out).sum();
    assert!(spilled > 0, "the hot cell must spill into its siblings");
    let received: usize = cells.iter().map(|c| c.spilled_in).sum();
    assert_eq!(spilled, received, "every spilled task lands somewhere");
}

#[test]
fn least_loaded_spillover_is_deterministic_and_spreads_load() {
    // Same checked-in three-cell topology, with the sibling-selection
    // knob flipped to load-aware scoring. The legacy `true` in the spec
    // parses as `first_feasible`; here we override it by name.
    let text = std::fs::read_to_string("../../experiments/three_cell_spillover.json").unwrap();
    let mut spec = ExperimentSpec::from_json(&text).unwrap();
    assert_eq!(
        spec.spillover,
        SpilloverPolicy::FirstFeasible,
        "legacy boolean `true` must parse as first_feasible"
    );
    spec.spillover = SpilloverPolicy::LeastLoaded;
    let a = run_spec(&spec).expect("least-loaded run");
    let b = run_spec(&spec).expect("least-loaded rerun");
    assert_eq!(
        to_pretty_json(&Serialize::to_value(&a)),
        to_pretty_json(&Serialize::to_value(&b)),
        "least-loaded spillover must be deterministic"
    );
    let cells: Vec<_> = a.runs[0].schedulers[0].cells.iter().collect();
    let spilled: usize = cells.iter().map(|c| c.spilled_out).sum();
    let received: usize = cells.iter().map(|c| c.spilled_in).sum();
    assert!(spilled > 0, "the hot cell still spills");
    assert_eq!(spilled, received, "every spilled task lands somewhere");
    // Load-aware scoring sends work to *both* siblings, not just the
    // next one in scan order.
    let receivers = cells.iter().filter(|c| c.spilled_in > 0).count();
    assert!(
        receivers >= 2,
        "least-loaded routing must use more than one sibling (got {receivers})"
    );
    // And the policy round-trips through the spec document by name.
    let doc = spec.to_value();
    assert_eq!(doc["spillover"].as_str(), Some("least_loaded"));
    let back: ExperimentSpec = Deserialize::from_value(&doc).unwrap();
    assert_eq!(back.spillover, SpilloverPolicy::LeastLoaded);
}

#[test]
fn retrain_cadence_drives_live_registry() {
    // live_registry starts cold; the in-timeline retraining component
    // must hot-swap models mid-run and change routing (some tasks reach
    // the HP queue, visible as preemptions or a placed group0 record
    // with low latency). At minimum the run must be deterministic.
    let spec = r#"{
        "name": "retrain",
        "sim": {"cycle": 500000, "attempts_per_cycle": 3,
                 "mean_runtime": 6000000, "horizon": 90000000, "seed": 9},
        "schedulers": ["live_registry"],
        "workload": {"Synthetic": {
            "machines": [{"count": 6, "cpu": 1.0, "memory": 1.0}],
            "tasks": 250,
            "arrival": {"Uniform": {"gap": 50000}},
            "restrictive": {"count": 4, "start": 30000000,
                             "period": 8000000, "cpu": 0.2, "priority": 6}
        }},
        "scenario": {"retrain": {"period": 10000000}},
        "train": {"epochs_limit": 25, "max_attempts": 1}
    }"#;
    let a = run_spec_json(spec).expect("first");
    let b = run_spec_json(spec).expect("second");
    assert_eq!(
        to_pretty_json(&Serialize::to_value(&a)),
        to_pretty_json(&Serialize::to_value(&b)),
        "synchronous in-timeline retraining must stay deterministic"
    );
    let cell = &a.runs[0].schedulers[0].cells[0];
    assert!(cell.placed > 200, "most tasks place");
}

#[test]
fn serde_default_and_field_errors() {
    // Minimal spec: every #[serde(default)] field may be omitted.
    let spec: ExperimentSpec = serde_json::from_str(
        r#"{"name": "tiny", "workload": {"Synthetic": {
            "machines": [{"count": 2, "cpu": 1.0, "memory": 1.0}],
            "tasks": 5, "arrival": {"Uniform": {"gap": 1000}}}}}"#,
    )
    .expect("defaults fill in");
    assert_eq!(spec.sim, SimConfig::default());
    assert_eq!(spec.placers, PlacerSpec::default());
    assert_eq!(spec.scheduler_names(), vec!["main_only".to_string()]);
    assert!(spec.sweep.is_none());

    // A bad field errors with its dotted location.
    let err = serde_json::from_str::<ExperimentSpec>(
        r#"{"name": "bad", "sim": {"cycle": "not-a-number"}}"#,
    )
    .expect_err("bad field type");
    let msg = err.to_string();
    assert!(
        msg.contains("SimConfig.cycle"),
        "error must point at the offending field, got: {msg}"
    );

    // Unknown enum variants list the registry of expected names.
    let err = serde_json::from_str::<WorkloadSpec>(r#"{"Bogus": {}}"#).expect_err("bad variant");
    assert!(err.to_string().contains("Trace/Synthetic"), "got: {err}");
}

#[test]
fn unknown_registry_names_are_rejected_at_validation() {
    let err = ExperimentSpec::from_json(
        r#"{"name": "x", "schedulers": ["quantum"], "workload": {"Synthetic": {
            "machines": [{"count": 1, "cpu": 1.0, "memory": 1.0}],
            "tasks": 1, "arrival": {"Uniform": {"gap": 1000}}}}}"#,
    )
    .expect_err("unknown scheduler");
    assert!(err.to_string().contains("unknown scheduler"));
}

fn arb_arrival() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (1u64..100_000).prop_map(|gap| ArrivalProcess::Uniform { gap }),
        (1u64..100_000).prop_map(|mean_gap| ArrivalProcess::Exponential { mean_gap }),
        (1u64..50, 100u64..10_000).prop_map(|(lo, hi)| ArrivalProcess::Pareto {
            lo: lo as f64,
            hi: hi as f64,
            alpha: 1.5,
        }),
    ]
}

fn arb_size() -> impl Strategy<Value = SizeDist> {
    prop_oneof![
        (1u32..90).prop_map(|v| SizeDist::Fixed(v as f64 / 100.0)),
        (1u32..20, 30u32..90).prop_map(|(lo, hi)| SizeDist::Pareto {
            lo: lo as f64 / 100.0,
            hi: hi as f64 / 100.0,
            alpha: 1.25,
        }),
    ]
}

fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (0usize..5, 0u64..4, 0usize..3, 0usize..3).prop_map(|(failures, seed, gangs, autoscale)| {
        ScenarioSpec {
            churn: (failures > 0).then_some(ChurnSpec {
                failures,
                window: (5_000_000, 20_000_000),
                outage: 10_000_000,
                seed,
            }),
            gangs: (gangs > 0).then_some(GangSpec {
                count: gangs,
                size: 2,
                start: 1_000_000,
                period: 4_000_000,
                cpu: 0.4,
                priority: 3,
            }),
            rollout: None,
            retrain: None,
            autoscale: (autoscale > 0).then(|| AutoscaleSpec {
                policy: ["threshold", "target_tracking", "predictive"][autoscale % 3].to_string(),
                min: 1,
                max: 12,
                cadence: 3_000_000,
                warm_pool: autoscale,
                delay: ProvisionDelay::Exponential { mean: 4_000_000 },
                template: None,
                params: PolicyParams {
                    up_pending: Some(6),
                    ..PolicyParams::default()
                },
            }),
            faults: None,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any spec the schema can express round-trips through JSON
    /// unchanged — the serializer and deserializer agree on every field,
    /// defaults included.
    #[test]
    fn spec_roundtrips_through_json(
        machines in 1usize..40,
        tasks in 0usize..500,
        seed in 0u64..1_000_000,
        cycle in 1u64..2_000_000,
        priority in 0u8..10,
        restrictive in 0usize..4,
        arrival in arb_arrival(),
        cpu in arb_size(),
        memory in arb_size(),
        scenario in arb_scenario(),
        sweep_vals in prop::collection::vec(0f64..10.0, 0..4),
    ) {
        let spec = ExperimentSpec {
            name: format!("prop-{seed}"),
            sim: SimConfig { cycle, seed, ..SimConfig::default() },
            schedulers: vec!["main_only".into(), "oracle".into()],
            placers: PlacerSpec::default(),
            workload: Some(WorkloadSpec::Synthetic(SyntheticWorkload {
                machines: vec![MachineGroup { count: machines, cpu: 1.0, memory: 1.0 }],
                tasks,
                arrival,
                cpu,
                memory,
                priority,
                restrictive: (restrictive > 0).then_some(RestrictiveSpec {
                    count: restrictive,
                    start: 2_000_000,
                    period: 3_000_000,
                    cpu: 0.2,
                    priority: 6,
                }),
            })),
            scenario,
            cells: vec![],
            spillover: SpilloverPolicy::Off,
            train: TrainSpec::default(),
            execution: ExecutionSpec::default(),
            observability: ObservabilitySpec::default(),
            sweep: (!sweep_vals.is_empty()).then_some(SweepSpec {
                knobs: vec![KnobSpec { path: "sim.attempts_per_cycle".into(), values: sweep_vals }],
                seeds: vec![seed],
                repeats: 2,
            }),
        };
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: ExperimentSpec = serde_json::from_str(&json).expect("parses back");
        prop_assert_eq!(&back, &spec);
        // And a second hop is stable (canonical form).
        let json2 = serde_json::to_string(&back).expect("re-serializes");
        prop_assert_eq!(json, json2);
    }

    /// Spec-driven single-cell runs are deterministic for any synthetic
    /// workload shape (not just the hand-picked ones above).
    #[test]
    fn any_synthetic_spec_is_deterministic(
        machines in 1usize..10,
        tasks in 1usize..120,
        seed in 0u64..500,
        arrival in arb_arrival(),
    ) {
        let spec = ExperimentSpec {
            name: "prop-det".into(),
            sim: SimConfig {
                cycle: 500_000,
                attempts_per_cycle: 3,
                mean_runtime: 4_000_000,
                horizon: 30_000_000,
                seed,
            },
            schedulers: vec!["main_only".into()],
            placers: PlacerSpec::default(),
            workload: Some(WorkloadSpec::Synthetic(SyntheticWorkload {
                machines: vec![MachineGroup { count: machines, cpu: 1.0, memory: 1.0 }],
                tasks,
                arrival,
                cpu: SizeDist::default(),
                memory: SizeDist::default(),
                priority: 2,
                restrictive: None,
            })),
            scenario: ScenarioSpec::default(),
            cells: vec![],
            spillover: SpilloverPolicy::Off,
            train: TrainSpec::default(),
            execution: ExecutionSpec::default(),
            observability: ObservabilitySpec::default(),
            sweep: None,
        };
        let a = run_spec(&spec).expect("first");
        let b = run_spec(&spec).expect("second");
        prop_assert_eq!(&a, &b);
    }
}

#[test]
fn elastic_burst_grows_then_shrinks_deterministically() {
    // The checked-in elastic spec is the acceptance scenario: a bursty
    // Pareto arrival process absorbed by scale-up, shrunk back by
    // drain-based scale-down, bit-identically on every run.
    let text = std::fs::read_to_string("../../experiments/elastic_burst.json").unwrap();
    let a = run_spec_json(&text).expect("elastic run");
    let b = run_spec_json(&text).expect("elastic rerun");
    assert_eq!(
        to_pretty_json(&Serialize::to_value(&a)),
        to_pretty_json(&Serialize::to_value(&b)),
        "autoscaled runs must be bit-deterministic"
    );
    let cell = &a.runs[0].schedulers[0].cells[0];
    let auto = cell.autoscale.as_ref().expect("autoscale stats recorded");
    let initial = auto.timeline.first().expect("timeline recorded").active;
    assert_eq!(initial, 4, "timeline starts at the spec's fleet");
    let peak = auto.peak_active();
    assert!(
        peak > initial,
        "the burst must grow the fleet (peak {peak})"
    );
    assert!(
        auto.final_active() < peak,
        "scale-down must shrink the fleet after the burst (final {}, peak {peak})",
        auto.final_active()
    );
    assert!(auto.timeline.iter().all(|s| s.active >= 3), "min respected");
    assert!(auto.drained > 0, "scale-down goes through the drain path");
    assert!(auto.warm_activations > 0, "the warm pool served the burst");
    assert_eq!(cell.unplaced, 0, "the grown fleet absorbs every task");
}

#[test]
fn cells_autoscale_independently_alongside_spillover() {
    // Two cells on one timeline: only the hot cell autoscales; tasks it
    // cannot admit while the fleet is still provisioning spill to the
    // static sibling. Each cell's control plane is its own component.
    let spec = r#"{
        "name": "elastic-spill",
        "sim": {"cycle": 500000, "attempts_per_cycle": 8,
                 "mean_runtime": 8000000, "horizon": 120000000, "seed": 13},
        "schedulers": ["main_only"],
        "spillover": "least_loaded",
        "cells": [
            {
                "name": "hot",
                "workload": {"Synthetic": {
                    "machines": [{"count": 3, "cpu": 1.0, "memory": 1.0}],
                    "tasks": 300,
                    "arrival": {"Exponential": {"mean_gap": 60000}},
                    "cpu": {"Fixed": 0.3}, "memory": {"Fixed": 0.3},
                    "priority": 2
                }},
                "scenario": {"autoscale": {
                    "policy": "target_tracking",
                    "min": 3, "max": 16, "cadence": 2000000, "warm_pool": 1,
                    "delay": {"Fixed": 5000000},
                    "params": {"target_util": 0.55}
                }}
            },
            {
                "name": "static",
                "workload": {"Synthetic": {
                    "machines": [{"count": 5, "cpu": 1.0, "memory": 1.0}],
                    "tasks": 40,
                    "arrival": {"Uniform": {"gap": 1000000}},
                    "cpu": {"Fixed": 0.2}, "memory": {"Fixed": 0.2},
                    "priority": 2
                }}
            }
        ]
    }"#;
    let a = run_spec_json(spec).expect("first");
    let b = run_spec_json(spec).expect("second");
    assert_eq!(
        to_pretty_json(&Serialize::to_value(&a)),
        to_pretty_json(&Serialize::to_value(&b)),
        "autoscale + spillover on one timeline must stay deterministic"
    );
    let cells = &a.runs[0].schedulers[0].cells;
    let hot = cells.iter().find(|c| c.cell == "hot").unwrap();
    let stat = cells.iter().find(|c| c.cell == "static").unwrap();
    let auto = hot.autoscale.as_ref().expect("hot cell autoscales");
    assert!(
        auto.peak_active() > 3,
        "hot cell grew (peak {})",
        auto.peak_active()
    );
    assert!(stat.autoscale.is_none(), "static cell has no control plane");
    assert!(
        stat.spilled_in > 0,
        "overflow while provisioning spills to the sibling"
    );
}

#[test]
fn spec_driven_soft_affinity_placers_run_and_validate() {
    let spec = r#"{
        "name": "soft",
        "sim": {"cycle": 500000, "attempts_per_cycle": 4,
                 "mean_runtime": 5000000, "horizon": 60000000, "seed": 5},
        "placers": {"main": "best_fit_soft", "hp": "preemptive_best_fit",
                     "soft": [{"attr": 0, "op": {"LessThan": 3}}]},
        "workload": {"Synthetic": {
            "machines": [{"count": 6, "cpu": 1.0, "memory": 1.0}],
            "tasks": 120,
            "arrival": {"Uniform": {"gap": 400000}},
            "cpu": {"Fixed": 0.5}, "memory": {"Fixed": 0.5}
        }}
    }"#;
    let a = run_spec_json(spec).expect("soft-placer run");
    let b = run_spec_json(spec).expect("soft-placer rerun");
    assert_eq!(&a, &b, "soft placement must stay deterministic");
    let cell = &a.runs[0].schedulers[0].cells[0];
    assert!(cell.placed > 100, "most tasks place under soft affinity");
    // The soft list round-trips through the normalized document.
    let parsed = ExperimentSpec::from_json(spec).unwrap();
    let doc = parsed.to_value();
    let back: ExperimentSpec = Deserialize::from_value(&doc).unwrap();
    assert_eq!(back.placers, parsed.placers);
    // Contradictory soft terms are rejected at validation time.
    let err = ExperimentSpec::from_json(&spec.replace(
        r#"[{"attr": 0, "op": {"LessThan": 3}}]"#,
        r#"[{"attr": 0, "op": {"Equal": 1}}, {"attr": 0, "op": {"Equal": 2}}]"#,
    ))
    .expect_err("contradictory soft set");
    assert!(err.to_string().contains("soft-affinity"), "got: {err}");
}

#[test]
fn autoscale_spec_validation_rejects_bad_blocks() {
    let base = r#"{
        "name": "x",
        "workload": {"Synthetic": {
            "machines": [{"count": 2, "cpu": 1.0, "memory": 1.0}],
            "tasks": 5, "arrival": {"Uniform": {"gap": 1000}}}},
        "scenario": {"autoscale": AUTO}
    }"#;
    let bad_policy = base.replace(
        "AUTO",
        r#"{"policy": "quantum", "min": 1, "max": 4, "cadence": 1000000}"#,
    );
    let err = ExperimentSpec::from_json(&bad_policy).expect_err("unknown policy");
    assert!(
        err.to_string().contains("unknown autoscale policy"),
        "{err}"
    );
    let bad_band = base.replace(
        "AUTO",
        r#"{"policy": "threshold", "min": 9, "max": 4, "cadence": 1000000}"#,
    );
    let err = ExperimentSpec::from_json(&bad_band).expect_err("min > max");
    assert!(err.to_string().contains("exceeds max"), "{err}");
    let bad_cadence = base.replace(
        "AUTO",
        r#"{"policy": "threshold", "min": 1, "max": 4, "cadence": 0}"#,
    );
    let err = ExperimentSpec::from_json(&bad_cadence).expect_err("cadence 0");
    assert!(err.to_string().contains("cadence"), "{err}");
}

#[test]
fn sweeping_the_autoscale_band_below_min_cannot_panic() {
    // Parse-time validation rejects min > max, but sweep points rewrite
    // knobs without re-validating: the builder must clamp the band
    // instead of letting `desired.clamp(min, max)` panic mid-sweep.
    let spec = r#"{
        "name": "band-sweep",
        "sim": {"cycle": 500000, "attempts_per_cycle": 4,
                 "mean_runtime": 5000000, "horizon": 40000000, "seed": 3},
        "workload": {"Synthetic": {
            "machines": [{"count": 4, "cpu": 1.0, "memory": 1.0}],
            "tasks": 80, "arrival": {"Uniform": {"gap": 300000}},
            "cpu": {"Fixed": 0.3}, "memory": {"Fixed": 0.3}
        }},
        "scenario": {"autoscale": {
            "policy": "threshold", "min": 4, "max": 8, "cadence": 2000000
        }},
        "sweep": {"knobs": [{"path": "scenario.autoscale.max", "values": [2, 8]}]}
    }"#;
    let report = run_spec_json(spec).expect("swept band must run, clamped");
    assert_eq!(report.runs.len(), 2);
    for run in &report.runs {
        let auto = run.schedulers[0].cells[0]
            .autoscale
            .as_ref()
            .expect("autoscale stats");
        assert!(auto.timeline.iter().all(|s| s.active >= 4), "floor holds");
    }
}

#[test]
fn report_diffing_pairs_rows_and_computes_deltas() {
    use ctlm_lab::report::{diff_reports, SummaryDiff};
    let a = run_spec_json(&busy_spec()).expect("run a");
    // Same spec, harder attempt budget: per-point medians move, rows
    // stay aligned by (knobs, scheduler, cell).
    let mut spec = ExperimentSpec::from_json(&busy_spec()).unwrap();
    spec.sim.attempts_per_cycle = 1;
    let b = run_spec(&spec).expect("run b");
    let diff = diff_reports(&a, &b);
    assert_eq!(diff.len(), a.summary.len(), "every row pairs up");
    assert!(diff.iter().all(|d| d.present == (true, true)));
    // The tighter budget must slow the main-only group0 medians
    // somewhere — and the deltas must reflect both sides.
    let moved = diff
        .iter()
        .filter(|d| d.scheduler == "main_only")
        .filter_map(|d| SummaryDiff::delta(d.group0_mean))
        .any(|delta| delta > 0.0);
    assert!(moved, "starving the budget must worsen a group0 median");
    // Rows present on only one side are kept and marked.
    let mut b_extra = b.clone();
    b_extra.summary[0].cell = "renamed".to_string();
    let diff = diff_reports(&a, &b_extra);
    assert!(diff.iter().any(|d| d.present == (true, false)));
    assert!(diff
        .iter()
        .any(|d| d.present == (false, true) && d.cell == "renamed"));
    assert_eq!(
        SummaryDiff::delta((Some(2.0), Some(5.0))),
        Some(3.0),
        "delta is b − a"
    );
    assert_eq!(SummaryDiff::ratio((Some(2.0), Some(5.0))), Some(2.5));
    assert_eq!(SummaryDiff::ratio((None, Some(5.0))), None);
}

#[test]
fn knob_paths_rewrite_numbers_and_reject_garbage() {
    use ctlm_lab::sweep::set_path;
    use serde_json::Value;
    let spec = ExperimentSpec::from_json(&busy_spec()).unwrap();
    let mut doc = spec.to_value();
    set_path(&mut doc, "sim.mean_runtime", Value::Num(123.0)).expect("valid path");
    let back: ExperimentSpec = Deserialize::from_value(&doc).unwrap();
    assert_eq!(back.sim.mean_runtime, 123);
    assert!(set_path(&mut doc, "sim.nope", Value::Num(1.0)).is_err());
    assert!(
        set_path(&mut doc, "name", Value::Num(1.0)).is_err(),
        "non-numeric leaf"
    );
    assert!(set_path(&mut doc, "sim.cycle.deeper", Value::Num(1.0)).is_err());
}
