//! Telemetry determinism gates over the checked-in experiment specs.
//!
//! Two invariants anchor the observability design:
//!
//! 1. **Enabling telemetry never changes the report.** Metrics, traces,
//!    the flight recorder and shard profiling are read-only observers
//!    of the simulation; with all four switched on, every checked-in
//!    spec must produce a report body byte-identical to the unobserved
//!    run.
//! 2. **The metrics and spans exports are thread-count independent.**
//!    Counters, histograms, traces and span logs are pure functions of
//!    the deterministic event sequence, folded in grid order — so the
//!    serialized registry and the trace-event document must not change
//!    between `execution.threads` 1, 2 and 4.

use std::path::{Path, PathBuf};

use ctlm_lab::report::to_pretty_json;
use ctlm_lab::run::ArrivalMode;
use ctlm_lab::run_spec_observed;
use ctlm_lab::spec::ExperimentSpec;

fn experiments_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../experiments")
}

/// Every top-level checked-in spec (the `scale/` tier is exercised by
/// dedicated smoke runs — too large for the debug-build test suite).
fn checked_in_specs() -> Vec<PathBuf> {
    let mut specs: Vec<PathBuf> = std::fs::read_dir(experiments_dir())
        .expect("experiments/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    specs.sort();
    assert!(!specs.is_empty(), "no checked-in specs found");
    specs
}

fn load_spec(path: &Path) -> ExperimentSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    ExperimentSpec::from_json(&text)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

#[test]
fn observability_never_changes_report_bytes() {
    for path in checked_in_specs() {
        let mut spec = load_spec(&path);
        spec.observability = Default::default();
        let (plain, _) = run_spec_observed(&spec, ArrivalMode::Streaming)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        spec.observability.metrics = true;
        spec.observability.trace_events = 1024;
        spec.observability.profile = true;
        spec.observability.spans = true;
        let (observed, obs) = run_spec_observed(&spec, ArrivalMode::Streaming)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            to_pretty_json(&plain),
            to_pretty_json(&observed),
            "telemetry changed the report body for {}",
            path.display()
        );
        assert!(
            obs.metrics.counters_sorted().iter().any(|&(_, v)| v > 0),
            "metrics registry stayed empty for {}",
            path.display()
        );
        assert!(
            !obs.traces.is_empty(),
            "no traces recorded for {}",
            path.display()
        );
        assert!(
            obs.spans.iter().any(|(_, log)| !log.is_empty()),
            "no spans recorded for {}",
            path.display()
        );
    }
}

#[test]
fn metrics_export_identical_across_thread_counts() {
    for name in ["streaming_smoke.json", "three_cell_spillover.json"] {
        let mut spec = load_spec(&experiments_dir().join(name));
        spec.observability.metrics = true;
        spec.observability.trace_events = 512;
        spec.observability.spans = true;
        let mut exports: Vec<(String, Vec<String>, String)> = Vec::new();
        for threads in [1usize, 2, 4] {
            spec.execution.threads = threads;
            let (_, obs) = run_spec_observed(&spec, ArrivalMode::Streaming)
                .unwrap_or_else(|e| panic!("{name} at {threads} threads: {e}"));
            let mut traces: Vec<&(String, ctlm_telemetry::TraceRing)> = obs.traces.iter().collect();
            traces.sort_by(|a, b| a.0.cmp(&b.0));
            exports.push((
                to_pretty_json(&obs.metrics),
                traces
                    .iter()
                    .map(|(k, ring)| format!("{k}: {}", to_pretty_json(ring)))
                    .collect(),
                // The sim-plane spans document (no host track) must be
                // byte-identical across thread counts.
                to_pretty_json(&ctlm_lab::flight::trace_document(&obs, false)),
            ));
        }
        assert_eq!(
            exports[0], exports[1],
            "{name}: metrics export differs between 1 and 2 threads"
        );
        assert_eq!(
            exports[0], exports[2],
            "{name}: metrics export differs between 1 and 4 threads"
        );
    }
}
