//! The parallel-execution determinism contract, pinned: for a given
//! (spec, seed, epoch length), lab reports are **bit-identical** for any
//! `execution.threads` value. Multi-cell specs always run the
//! epoch-sharded semantics, so thread count can only move work between
//! OS threads — never reorder events; single-cell specs ignore the knob
//! entirely. Every checked-in experiment spec is covered (the scaled
//! scenarios under `experiments/scale/` are release-profile material and
//! excluded).

use ctlm_lab::report::to_pretty_json;
use ctlm_lab::{run_spec, ExperimentSpec};

fn experiments_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../experiments")
}

fn load(path: &std::path::Path) -> ExperimentSpec {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    ExperimentSpec::from_json(&text).unwrap_or_else(|e| panic!("parse {path:?}: {e}"))
}

/// Runs `spec` once per thread count and asserts every report serializes
/// to the same bytes as the first.
fn assert_identical_across(spec: &ExperimentSpec, thread_counts: &[usize], label: &str) {
    let mut baseline: Option<String> = None;
    for &threads in thread_counts {
        let mut spec = spec.clone();
        spec.execution.threads = threads;
        let json = to_pretty_json(&run_spec(&spec).expect("spec runs"));
        match &baseline {
            None => baseline = Some(json),
            Some(expected) => assert_eq!(
                &json, expected,
                "{label}: report changed at threads={threads}"
            ),
        }
    }
}

#[test]
fn every_checked_in_spec_is_bit_identical_across_thread_counts() {
    let mut files: Vec<_> = std::fs::read_dir(experiments_dir())
        .expect("experiments directory")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "json").then_some(p)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no experiment specs found");
    for path in files {
        let spec = load(&path);
        assert_identical_across(&spec, &[1, 2, 4], &path.display().to_string());
    }
}

/// Epoch-boundary spillover delivery must not depend on how shards are
/// scheduled onto workers: odd thread counts chunk the three cells
/// differently (3, 2+1, 1+1+1), and 0 resolves to the pool's configured
/// width — all must reproduce the sequential report exactly.
#[test]
fn spillover_delivery_is_independent_of_worker_scheduling() {
    let spec = load(&experiments_dir().join("three_cell_spillover.json"));
    assert_identical_across(&spec, &[1, 2, 3, 4, 5, 0], "three_cell_spillover");
}
